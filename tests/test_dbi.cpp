/**
 * @file
 * Unit and property tests for DBI-DC (paper §II-B).
 */

#include <gtest/gtest.h>

#include <tuple>

#include "common/bitops.h"
#include "common/rng.h"
#include "core/dbi.h"

namespace bxt {
namespace {

TEST(Dbi, InvertsOnesHeavyGroups)
{
    Transaction tx(32);
    tx.data()[0] = 0xff; // 8 ones -> inverted to 0x00.
    tx.data()[1] = 0x0f; // exactly half -> NOT inverted (strict >).
    tx.data()[2] = 0x1f; // 5 ones -> inverted to 0xe0 (3 ones).
    DbiCodec codec(1);
    const Encoded enc = codec.encode(tx);
    EXPECT_EQ(enc.payload.data()[0], 0x00);
    EXPECT_EQ(enc.payload.data()[1], 0x0f);
    EXPECT_EQ(enc.payload.data()[2], 0xe0);
    EXPECT_EQ(enc.meta[0], 1);
    EXPECT_EQ(enc.meta[1], 0);
    EXPECT_EQ(enc.meta[2], 1);
    EXPECT_EQ(codec.decode(enc), tx);
}

TEST(Dbi, MetaWireCounts)
{
    EXPECT_EQ(DbiCodec(1, 4).metaWiresPerBeat(), 4u);
    EXPECT_EQ(DbiCodec(2, 4).metaWiresPerBeat(), 2u);
    EXPECT_EQ(DbiCodec(4, 4).metaWiresPerBeat(), 1u);
    EXPECT_EQ(DbiCodec(1, 8).metaWiresPerBeat(), 8u);
    EXPECT_EQ(DbiCodec(8, 8).metaWiresPerBeat(), 1u);
}

TEST(Dbi, MetaLayoutIsBeatMajor)
{
    Transaction tx(32);
    // Beat 3 (bytes 12..15): make group 2 (byte 14) ones-heavy.
    tx.data()[14] = 0xfe;
    DbiCodec codec(1, 4);
    const Encoded enc = codec.encode(tx);
    ASSERT_EQ(enc.meta.size(), 32u); // 8 beats x 4 groups.
    EXPECT_EQ(enc.meta[3 * 4 + 2], 1);
    std::size_t set = 0;
    for (auto bit : enc.meta)
        set += bit;
    EXPECT_EQ(set, 1u);
}

TEST(Dbi, FourByteGroupThreshold)
{
    Transaction tx(32);
    tx.setWord32(0, 0xffff8000); // 17 of 32 ones -> invert.
    tx.setWord32(4, 0xffff0000); // exactly 16 -> keep.
    DbiCodec codec(4, 4);
    const Encoded enc = codec.encode(tx);
    EXPECT_EQ(enc.payload.word32(0), 0x00007fffu);
    EXPECT_EQ(enc.payload.word32(4), 0xffff0000u);
    EXPECT_EQ(codec.decode(enc), tx);
}

TEST(Dbi, GuaranteesAtMostHalfOnesPerGroup)
{
    Rng rng(21);
    DbiCodec codec(1, 4);
    for (int trial = 0; trial < 500; ++trial) {
        Transaction tx(32);
        for (std::size_t off = 0; off < 32; off += 8)
            tx.setWord64(off, rng.next64());
        const Encoded enc = codec.encode(tx);
        for (std::size_t i = 0; i < 32; ++i) {
            ASSERT_LE(popcount64(enc.payload.data()[i]), 4)
                << "byte " << i << " breaks the DBI guarantee";
        }
    }
}

TEST(Dbi, NeverIncreasesDataOnes)
{
    Rng rng(22);
    for (std::size_t group : {1u, 2u, 4u}) {
        DbiCodec codec(group, 4);
        for (int trial = 0; trial < 200; ++trial) {
            Transaction tx(32);
            for (std::size_t off = 0; off < 32; off += 8)
                tx.setWord64(off, rng.next64());
            const Encoded enc = codec.encode(tx);
            EXPECT_LE(enc.payload.ones(), tx.ones());
        }
    }
}

TEST(Dbi, Name)
{
    EXPECT_EQ(DbiCodec(1).name(), "dbi1");
    EXPECT_EQ(DbiCodec(4).name(), "dbi4");
}

/** Round-trip sweep over (group, bus width, size). */
class DbiRoundTrip
    : public testing::TestWithParam<
          std::tuple<std::size_t, std::size_t, std::size_t>>
{
};

TEST_P(DbiRoundTrip, RandomData)
{
    const auto [group, bus, size] = GetParam();
    if (group > bus || size % bus != 0)
        GTEST_SKIP();
    DbiCodec codec(group, bus);
    Rng rng(31 + group + bus + size);
    for (int trial = 0; trial < 300; ++trial) {
        Transaction tx(size);
        for (std::size_t off = 0; off < size; off += 8)
            tx.setWord64(off, rng.next64());
        const Encoded enc = codec.encode(tx);
        ASSERT_EQ(enc.meta.size(),
                  (size / bus) * codec.metaWiresPerBeat());
        ASSERT_EQ(codec.decode(enc), tx);
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllConfigs, DbiRoundTrip,
    testing::Combine(testing::Values<std::size_t>(1, 2, 4, 8),
                     testing::Values<std::size_t>(4, 8),
                     testing::Values<std::size_t>(32, 64)));

TEST(DbiAc, InvertsOnTransitionMajority)
{
    // Beat 0 reference is the idle (zero) bus, so DBI-AC on beat 0
    // behaves like DBI-DC; beat 1 is judged against beat 0's wires.
    Transaction tx(32);
    tx.data()[0] = 0xff; // Beat 0: 8 transitions from idle -> invert.
    tx.data()[4] = 0x00; // Beat 1 vs wires 0x00 (inverted ff): keep.
    DbiAcCodec codec(1, 4);
    const Encoded enc = codec.encode(tx);
    EXPECT_EQ(enc.payload.data()[0], 0x00);
    EXPECT_EQ(enc.meta[0], 1);
    EXPECT_EQ(enc.payload.data()[4], 0x00);
    EXPECT_EQ(enc.meta[4], 0);
    EXPECT_EQ(codec.decode(enc), tx);
}

TEST(DbiAc, BoundsTransitionsPerGroup)
{
    Rng rng(77);
    DbiAcCodec codec(1, 4);
    for (int trial = 0; trial < 300; ++trial) {
        Transaction tx(32);
        for (std::size_t off = 0; off < 32; off += 8)
            tx.setWord64(off, rng.next64());
        const Encoded enc = codec.encode(tx);
        // Recount transitions on the encoded wires: never more than half
        // per group per beat.
        std::uint8_t prev[4] = {0, 0, 0, 0};
        for (std::size_t beat = 0; beat < 8; ++beat) {
            for (std::size_t lane = 0; lane < 4; ++lane) {
                const std::uint8_t value =
                    enc.payload.data()[beat * 4 + lane];
                ASSERT_LE(popcount64(static_cast<std::uint8_t>(
                              value ^ prev[lane])),
                          4);
                prev[lane] = value;
            }
        }
        ASSERT_EQ(codec.decode(enc), tx);
    }
}

TEST(DbiAc, AlternatingDataTogglesLess)
{
    // ff/00 alternation: raw wires toggle fully every beat; DBI-AC holds
    // them flat at the cost of polarity-bit toggles.
    Transaction tx(32);
    for (std::size_t beat = 0; beat < 8; beat += 2) {
        for (std::size_t lane = 0; lane < 4; ++lane)
            tx.data()[beat * 4 + lane] = 0xff;
    }
    DbiAcCodec codec(1, 4);
    const Encoded enc = codec.encode(tx);
    // Encoded payload should be constant zero after the first inversion.
    for (std::size_t i = 0; i < 32; ++i)
        EXPECT_EQ(enc.payload.data()[i], 0x00) << i;
    EXPECT_EQ(codec.decode(enc), tx);
}

TEST(DbiAc, NameAndMeta)
{
    EXPECT_EQ(DbiAcCodec(1).name(), "dbi-ac1");
    EXPECT_EQ(DbiAcCodec(2, 8).metaWiresPerBeat(), 4u);
    EXPECT_TRUE(DbiAcCodec(1).stateless());
}

TEST(DbiAc, RandomRoundTripAllGroups)
{
    Rng rng(79);
    for (std::size_t group : {1u, 2u, 4u}) {
        DbiAcCodec codec(group, 4);
        for (int trial = 0; trial < 300; ++trial) {
            Transaction tx(32);
            for (std::size_t off = 0; off < 32; off += 8)
                tx.setWord64(off, rng.next64());
            const Encoded enc = codec.encode(tx);
            ASSERT_EQ(codec.decode(enc), tx);
        }
    }
}

TEST(Dbi, AllOnesTransactionHalves)
{
    Transaction tx(32);
    for (std::size_t i = 0; i < 32; ++i)
        tx.data()[i] = 0xff;
    DbiCodec codec(1, 4);
    const Encoded enc = codec.encode(tx);
    EXPECT_EQ(enc.payload.ones(), 0u);
    EXPECT_EQ(enc.metaOnes(), 32u); // Every group inverted.
    // Net: 256 ones became 32 — the paper's bound in action.
    EXPECT_EQ(enc.ones(), 32u);
}

} // namespace
} // namespace bxt
