/**
 * @file
 * Differential verification suite (ISSUE: tentpole). Checks the core
 * codecs and Bus against the naive reference implementations in
 * src/verify/ over the structured generator stream, proves the lane-level
 * ZDR bijectivity statement, replays the shrunken-repro corpus, and — as a
 * permanent mutation smoke test — verifies that a deliberately injected
 * codec bug is caught and shrunk to a near-minimal repro.
 *
 * Iteration budgets scale with the BXT_FUZZ_ITERS environment variable
 * (transactions per (spec, wires) unit); the default keeps the suite
 * tier-1 fast, the nightly job raises it.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "common/rng.h"
#include "core/codec_factory.h"
#include "verify/differential.h"
#include "verify/generators.h"
#include "verify/invariants.h"
#include "verify/reference_codecs.h"

namespace bxt {
namespace {

using verify::DifferentialChecker;
using verify::FuzzOptions;
using verify::FuzzReport;
using verify::Violation;

std::uint64_t
fuzzIters(std::uint64_t fallback)
{
    if (const char *env = std::getenv("BXT_FUZZ_ITERS")) {
        const std::uint64_t parsed = std::strtoull(env, nullptr, 0);
        if (parsed > 0)
            return parsed;
    }
    return fallback;
}

std::size_t
countOnes(const Transaction &tx)
{
    std::size_t ones = 0;
    for (std::size_t i = 0; i < tx.size(); ++i) {
        for (int bit = 0; bit < 8; ++bit)
            ones += (tx.data()[i] >> bit) & 1;
    }
    return ones;
}

std::string
failureText(const FuzzReport &report)
{
    std::string text;
    for (const auto &failure : report.failures) {
        text += failure.spec + " wires=" +
                std::to_string(failure.dataWires) + " " +
                failure.violation.invariant + ": " +
                failure.violation.detail + "\n";
    }
    return text;
}

/**
 * Every canonical spec agrees with its independent reference model (and
 * round-trips, and matches RefBus) over the full generator stream on both
 * channel widths. This is the acceptance gate: raise BXT_FUZZ_ITERS to
 * 1000000 for the full campaign the ISSUE requires locally.
 */
TEST(Differential, CanonicalSpecsMatchReferenceModels)
{
    FuzzOptions options;
    options.iterationsPerSpec = fuzzIters(1500);
    options.idleFraction = 0.3;
    const FuzzReport report = runDifferentialFuzz(options);
    EXPECT_GT(report.transactionsChecked, 0u);
    EXPECT_TRUE(report.ok()) << failureText(report);
}

/** The two pipeline orders are distinct specs; both must stay clean. */
TEST(Differential, BothPipelineOrdersFuzzClean)
{
    FuzzOptions options;
    options.specs = {"xor4+zdr|dbi4", "dbi4|xor4+zdr",
                     "universal3+zdr|dbi4", "dbi4|universal3+zdr"};
    options.iterationsPerSpec = fuzzIters(1500);
    const FuzzReport report = runDifferentialFuzz(options);
    EXPECT_TRUE(report.ok()) << failureText(report);
}

/**
 * Paper §IV-A bijectivity argument, machine-checked at lane level: ZDR is
 * plain base-XOR composed with the transposition σ of the two output
 * symbols {base, C}. σ∘σ == id, so ZDR stays a bijection and needs no
 * metadata. Exhaustive for 1-byte lanes, randomized for wider lanes.
 */
TEST(Differential, ZdrLaneSwapIsAnInvolution)
{
    // Exhaustive: every (input, base) pair of 1-byte lanes.
    for (unsigned in = 0; in < 256; ++in) {
        for (unsigned base = 0; base < 256; ++base) {
            const auto violation = verify::checkZdrLaneInvolution(
                {static_cast<std::uint8_t>(in)},
                {static_cast<std::uint8_t>(base)});
            ASSERT_FALSE(violation.has_value())
                << violation->invariant << ": " << violation->detail;
        }
    }

    // Randomized wide lanes, biased toward the special symbols.
    Rng rng(0x2d12);
    for (std::size_t lane : {2u, 4u, 8u}) {
        for (int i = 0; i < 4000; ++i) {
            std::vector<std::uint8_t> in(lane);
            std::vector<std::uint8_t> base(lane);
            switch (rng.nextBounded(4)) {
              case 0:
                break; // in stays zero.
              case 1:
                in = verify::refZdrConstant(lane);
                break;
              case 2:
                for (auto &b : in)
                    b = static_cast<std::uint8_t>(rng.nextBounded(256));
                base = in; // in == base → plain XOR gives zero.
                break;
              default:
                for (auto &b : in)
                    b = static_cast<std::uint8_t>(rng.nextBounded(256));
            }
            if (rng.nextBounded(2) == 0) {
                for (auto &b : base)
                    b = static_cast<std::uint8_t>(rng.nextBounded(256));
            }
            const auto violation = verify::checkZdrLaneInvolution(in, base);
            ASSERT_FALSE(violation.has_value())
                << violation->invariant << ": " << violation->detail;
        }
    }
}

/**
 * DBI-DC weight bound, checked directly on adversarially dense inputs:
 * no encoded group may carry more ones than half its wires.
 */
TEST(Differential, DbiWeightBoundHoldsOnDenseInputs)
{
    Rng rng(0xdb1);
    for (std::size_t group : {1u, 2u, 4u}) {
        const std::string spec = "dbi" + std::to_string(group);
        CodecPtr codec = makeCodec(spec);
        for (int i = 0; i < 2000; ++i) {
            Transaction tx(32);
            for (std::size_t b = 0; b < tx.size(); ++b) {
                // Mostly-dense bytes hammer the inversion path.
                tx.data()[b] = static_cast<std::uint8_t>(
                    rng.nextBounded(4) == 0 ? rng.nextBounded(256) : 0xff);
            }
            const Encoded enc = codec->encode(tx);
            const std::size_t half_bits = group * 8 / 2;
            for (std::size_t off = 0; off < enc.payload.size();
                 off += group) {
                std::size_t ones = 0;
                for (std::size_t b = off; b < off + group; ++b) {
                    for (int bit = 0; bit < 8; ++bit)
                        ones += (enc.payload.data()[b] >> bit) & 1;
                }
                ASSERT_LE(ones, half_bits)
                    << spec << " group at " << off << " tx " << tx.toHex();
            }
        }
    }
}

/**
 * The Bus-vs-RefBus comparison stays exact across idle-gap fractions,
 * where the wires park at zero between transactions.
 */
TEST(Differential, BusMatchesReferenceBusAcrossIdleFractions)
{
    const std::vector<verify::GenKind> &kinds = verify::allGenKinds();
    for (double idle : {0.0, 0.3, 0.7}) {
        for (const char *spec : {"baseline", "xor4+zdr", "dbi4", "bd"}) {
            DifferentialChecker checker(spec, 32, idle);
            Rng rng(0x1d7e);
            Transaction previous(32);
            for (int i = 0; i < 400; ++i) {
                const Transaction tx = verify::generate(
                    rng, 32, kinds[i % kinds.size()], previous);
                previous = tx;
                const auto violation = checker.check(tx);
                ASSERT_FALSE(violation.has_value())
                    << spec << " idle " << idle << " "
                    << violation->invariant << ": " << violation->detail;
            }
        }
    }
}

/** Every shrunken repro in tests/corpus/ must stay fixed. */
TEST(Differential, CorpusReplayStaysClean)
{
    const FuzzReport report = verify::replayCorpus(BXT_CORPUS_DIR);
    EXPECT_TRUE(report.ok()) << failureText(report);
}

/**
 * A codec that mimics a real class of bug: it corrupts one encoded byte,
 * but only when that byte holds a specific value — so the bug is silent on
 * most inputs and only a structured search finds it.
 */
class BuggyCodec : public Codec
{
  public:
    BuggyCodec() : inner_(makeCodec("xor4+zdr")) {}
    std::string name() const override { return inner_->name(); }
    unsigned metaWiresPerBeat() const override
    {
        return inner_->metaWiresPerBeat();
    }
    Encoded encode(const Transaction &tx) override
    {
        Encoded out;
        encodeInto(tx, out);
        return out;
    }
    Transaction decode(const Encoded &enc) override
    {
        return inner_->decode(enc);
    }
    void encodeInto(const Transaction &tx, Encoded &out) override
    {
        inner_->encodeInto(tx, out);
        if (out.payload.size() > 5 && out.payload.data()[5] == 0x40)
            out.payload.data()[5] = 0x41; // The injected bug.
    }
    void decodeInto(const Encoded &enc, Transaction &out) override
    {
        inner_->decodeInto(enc, out);
    }

  private:
    CodecPtr inner_;
};

/**
 * Mutation smoke test (ISSUE acceptance): the harness must catch the
 * injected bug within the normal fuzz budget and shrink the failing input
 * to a near-minimal repro — the bug needs only encoded byte 5 == 0x40,
 * reachable from a single set input bit, so the shrunken transaction must
 * be tiny and must still fail on a fresh checker.
 */
TEST(Differential, InjectedCodecBugIsCaughtAndShrunk)
{
    const unsigned wires = 32;
    DifferentialChecker checker(std::make_unique<BuggyCodec>(), "xor4+zdr",
                                wires, 0.0);

    const std::vector<verify::GenKind> &kinds = verify::allGenKinds();
    Rng rng(0xb06);
    Transaction previous(wires);
    std::optional<Violation> violation;
    Transaction failing(wires);
    const std::uint64_t budget = fuzzIters(20000);
    for (std::uint64_t i = 0; i < budget && !violation; ++i) {
        const Transaction tx =
            verify::generate(rng, wires, kinds[i % kinds.size()], previous);
        previous = tx;
        violation = checker.check(tx);
        if (violation)
            failing = tx;
    }
    ASSERT_TRUE(violation.has_value())
        << "injected bug not caught in " << budget << " transactions";

    const verify::FailPredicate fails = [&](const Transaction &candidate) {
        DifferentialChecker fresh(std::make_unique<BuggyCodec>(), "xor4+zdr",
                                  wires, 0.0);
        return fresh.check(candidate).has_value();
    };
    ASSERT_TRUE(fails(failing)) << "failure does not reproduce fresh";

    const Transaction shrunk = verify::shrinkTransaction(failing, fails);
    EXPECT_TRUE(fails(shrunk));
    EXPECT_LE(shrunk.size(), 64u);
    // Greedy span+bit shrinking cannot clear coupled bit pairs, but the
    // minimum here is one set bit (input byte 5 = 0x40); allow slack for
    // pair-coupled local minima while still proving real minimization.
    EXPECT_LE(countOnes(shrunk), 8u)
        << "shrunk repro still has " << countOnes(shrunk)
        << " set bits: " << shrunk.toHex();
}

/** Specs without a reference model still get round-trip + bus checking. */
TEST(Differential, StatefulAndAcSpecsFuzzWithoutReference)
{
    for (const char *spec : {"bd", "dbi-ac1", "dbi-ac4"}) {
        DifferentialChecker checker(spec, 32, 0.0);
        EXPECT_FALSE(checker.hasReference()) << spec;
    }
    for (const char *spec : {"xor4+zdr", "universal3+zdr|dbi4", "dbi1"}) {
        DifferentialChecker checker(spec, 32, 0.0);
        EXPECT_TRUE(checker.hasReference()) << spec;
    }

    FuzzOptions options;
    options.specs = {"bd", "dbi-ac1", "dbi-ac4", "bd|dbi4"};
    options.iterationsPerSpec = fuzzIters(1500);
    const FuzzReport report = runDifferentialFuzz(options);
    EXPECT_TRUE(report.ok()) << failureText(report);
}

} // namespace
} // namespace bxt
