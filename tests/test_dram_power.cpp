/**
 * @file
 * Unit tests for the DRAM component power model.
 */

#include <gtest/gtest.h>

#include "energy/dram_power.h"

namespace bxt {
namespace {

BusStats
trafficOf(std::uint64_t bytes, std::uint64_t ones, std::uint64_t toggles)
{
    BusStats stats;
    stats.dataBits = bytes * 8;
    stats.dataOnes = ones;
    stats.dataToggles = toggles;
    return stats;
}

TEST(DramPower, TotalIsSumOfComponents)
{
    const DramPowerModel model(DramPowerParams::gddr5x());
    const EnergyBreakdown e =
        model.compute(trafficOf(1024, 4096, 4096), 2);
    EXPECT_NEAR(e.total(),
                e.background + e.activate + e.core + e.ioFixed + e.ioOnes +
                    e.ioToggles,
                1e-18);
    EXPECT_GT(e.background, 0.0);
    EXPECT_GT(e.ioOnes, 0.0);
}

TEST(DramPower, OnesEnergyMatchesElectricalModel)
{
    const DramPowerParams params = DramPowerParams::gddr5x();
    const DramPowerModel model(params);
    const EnergyBreakdown e = model.compute(trafficOf(32, 100, 0), 0);
    EXPECT_NEAR(e.ioOnes, 100 * params.io.energyPerOne(), 1e-18);
    EXPECT_DOUBLE_EQ(e.ioToggles, 0.0);
}

TEST(DramPower, ActivationEnergyScalesWithActs)
{
    const DramPowerParams params = DramPowerParams::gddr5x();
    const DramPowerModel model(params);
    const EnergyBreakdown one = model.compute(trafficOf(32, 0, 0), 1);
    const EnergyBreakdown ten = model.compute(trafficOf(32, 0, 0), 10);
    EXPECT_NEAR(ten.activate, 10.0 * one.activate, 1e-18);
    EXPECT_NEAR(one.activate, params.actEnergy, 1e-18);
}

TEST(DramPower, BackgroundScalesInverselyWithUtilization)
{
    DramPowerParams fast = DramPowerParams::gddr5x();
    fast.utilization = 1.0;
    DramPowerParams slow = DramPowerParams::gddr5x();
    slow.utilization = 0.5;
    const BusStats traffic = trafficOf(1024, 0, 0);
    const double bg_fast =
        DramPowerModel(fast).compute(traffic, 0).background;
    const double bg_slow =
        DramPowerModel(slow).compute(traffic, 0).background;
    EXPECT_NEAR(bg_slow, 2.0 * bg_fast, 1e-18);
}

TEST(DramPower, ComputeSimpleDerivesActivates)
{
    const DramPowerModel model(DramPowerParams::gddr5x());
    const BusStats traffic = trafficOf(8192, 0, 0);
    const EnergyBreakdown e = model.computeSimple(traffic, 4096);
    // 8192 bytes at one ACT per 4096 -> 2 activations.
    EXPECT_NEAR(e.activate, 2.0 * model.params().actEnergy, 1e-18);
}

TEST(DramPower, CalibratedBaselineSplit)
{
    // The DESIGN.md §6 calibration: at ~50 % ones and ~50 % toggle rate,
    // the ones-dependent share is ~12 % and the toggle share ~7 %, so
    // that the paper's reductions translate to its energy numbers.
    const DramPowerModel model(DramPowerParams::gddr5x());
    const std::uint64_t bytes = 1u << 20;
    const BusStats traffic =
        trafficOf(bytes, bytes * 4, bytes * 4); // 4 of 8 bits per byte.
    const EnergyBreakdown e = model.computeSimple(traffic);
    EXPECT_NEAR(e.ioOnes / e.total(), 0.12, 0.02);
    EXPECT_NEAR(e.ioToggles / e.total(), 0.07, 0.02);
    const double io_total =
        (e.ioOnes + e.ioToggles + e.ioFixed) / e.total();
    EXPECT_GT(io_total, 0.2);
    EXPECT_LT(io_total, 0.35);
}

TEST(DramPower, Hbm2HasNoOnesEnergy)
{
    const DramPowerModel hbm(DramPowerParams::hbm2());
    const EnergyBreakdown e =
        hbm.compute(trafficOf(1024, 4096, 4096), 1);
    EXPECT_DOUBLE_EQ(e.ioOnes, 0.0);
    EXPECT_GT(e.ioToggles, 0.0);
    EXPECT_GT(e.total(), 0.0);
}

TEST(DramPower, ReportContainsAllComponents)
{
    const DramPowerModel model(DramPowerParams::gddr5x());
    const std::string report =
        model.compute(trafficOf(64, 10, 10), 1).report();
    for (const char *key : {"background", "activate", "core", "ones",
                            "toggles", "total"}) {
        EXPECT_NE(report.find(key), std::string::npos) << key;
    }
}

TEST(DramPower, MetaWiresArePricedLikeDataWires)
{
    const DramPowerModel model(DramPowerParams::gddr5x());
    BusStats with_meta = trafficOf(32, 0, 0);
    with_meta.metaOnes = 50;
    with_meta.metaToggles = 10;
    const EnergyBreakdown e = model.compute(with_meta, 0);
    EXPECT_GT(e.ioOnes, 0.0);
    EXPECT_GT(e.ioToggles, 0.0);
}

} // namespace
} // namespace bxt
