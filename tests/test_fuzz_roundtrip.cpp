/**
 * @file
 * Fuzz-style differential tests: randomly composed codec pipelines over
 * randomly structured transactions. Losslessness of every composition is
 * the library's core contract (encoded data is what DRAM stores), so it
 * gets hammered beyond the per-codec unit tests.
 */

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/rng.h"
#include "core/codec_factory.h"

namespace bxt {
namespace {

/** Stage specs that can appear in a random pipeline. */
const char *const stage_pool[] = {
    "xor2",      "xor2+zdr",  "xor4",        "xor4+zdr", "xor8",
    "xor8+zdr",  "xor16",     "xor4+fixed",  "universal2",
    "universal3+zdr", "universal4+zdr", "dbi1", "dbi2", "dbi4",
    "dbi-ac1",   "dbi-ac2",   "bd",
};

std::string
randomSpec(Rng &rng)
{
    const std::size_t stages = 1 + rng.nextBounded(3);
    std::string spec;
    for (std::size_t s = 0; s < stages; ++s) {
        if (s > 0)
            spec += '|';
        spec += stage_pool[rng.nextBounded(std::size(stage_pool))];
    }
    return spec;
}

/** Transactions biased toward the encoders' special cases. */
Transaction
randomTransaction(Rng &rng, std::size_t size)
{
    Transaction tx(size);
    for (std::size_t off = 0; off < size; off += 8) {
        switch (rng.nextBounded(6)) {
          case 0:
            tx.setWord64(off, 0); // Zero elements (ZDR path).
            break;
          case 1: // ZDR constant-shaped values.
            tx.setWord64(off, 0x4000000040000000ull);
            break;
          case 2: // Repeats of the previous word.
            tx.setWord64(off, off >= 8 ? tx.word64(off - 8)
                                       : rng.next64());
            break;
          case 3: // Near-repeats (small diffs).
            tx.setWord64(off, (off >= 8 ? tx.word64(off - 8)
                                        : rng.next64()) ^
                                  rng.nextBounded(256));
            break;
          case 4: // All-ones-ish (DBI inversion path).
            tx.setWord64(off, ~rng.nextBounded(0xffff));
            break;
          default:
            tx.setWord64(off, rng.next64());
        }
    }
    return tx;
}

TEST(FuzzRoundTrip, RandomPipelinesOn32ByteTransactions)
{
    Rng rng(0xf22);
    for (int pipeline = 0; pipeline < 60; ++pipeline) {
        const std::string spec = randomSpec(rng);
        CodecPtr codec = makeCodec(spec);
        for (int i = 0; i < 200; ++i) {
            const Transaction tx = randomTransaction(rng, 32);
            const Encoded enc = codec->encode(tx);
            ASSERT_EQ(codec->decode(enc), tx)
                << "spec " << spec << " tx " << tx.toHex();
        }
    }
}

TEST(FuzzRoundTrip, RandomPipelinesOn64ByteTransactions)
{
    Rng rng(0xbeef);
    for (int pipeline = 0; pipeline < 40; ++pipeline) {
        const std::string spec = randomSpec(rng);
        CodecPtr codec = makeCodec(spec, 8); // 64-bit CPU bus.
        for (int i = 0; i < 150; ++i) {
            const Transaction tx = randomTransaction(rng, 64);
            const Encoded enc = codec->encode(tx);
            ASSERT_EQ(codec->decode(enc), tx)
                << "spec " << spec << " tx " << tx.toHex();
        }
    }
}

TEST(FuzzRoundTrip, MetadataFreeSchemesStayMetadataFree)
{
    Rng rng(0xabcd);
    for (const char *spec : {"xor2+zdr", "xor4+zdr", "xor8+zdr",
                             "universal3+zdr", "universal4+zdr",
                             "xor4+zdr|universal3+zdr"}) {
        CodecPtr codec = makeCodec(spec);
        EXPECT_EQ(codec->metaWiresPerBeat(), 0u) << spec;
        const Encoded enc = codec->encode(randomTransaction(rng, 32));
        EXPECT_TRUE(enc.meta.empty()) << spec;
    }
}

/**
 * Differential fuzz of the allocation-free hot paths: encodeInto /
 * decodeInto must produce exactly what encode / decode produce, for every
 * factory spec, with a *dirty* scratch reused across calls. Stateful
 * codecs (bd) advance their repository per encode, so each form gets its
 * own codec instance fed the identical stream.
 */
void
fuzzIntoMatchesAllocating(const std::string &spec, std::size_t tx_bytes,
                          std::size_t bus_bytes, Rng &rng)
{
    CodecPtr allocating = makeCodec(spec, bus_bytes);
    CodecPtr into = makeCodec(spec, bus_bytes);

    Encoded scratch_enc;
    Transaction scratch_back;
    for (int i = 0; i < 40; ++i) {
        const Transaction tx = randomTransaction(rng, tx_bytes);

        const Encoded enc = allocating->encode(tx);
        into->encodeInto(tx, scratch_enc);
        ASSERT_EQ(scratch_enc.payload, enc.payload)
            << "spec " << spec << " tx " << tx.toHex();
        ASSERT_EQ(scratch_enc.meta, enc.meta) << "spec " << spec;
        ASSERT_EQ(scratch_enc.metaWiresPerBeat, enc.metaWiresPerBeat)
            << "spec " << spec;

        const Transaction back = allocating->decode(enc);
        into->decodeInto(scratch_enc, scratch_back);
        ASSERT_EQ(scratch_back, back) << "spec " << spec;
        ASSERT_EQ(scratch_back, tx) << "spec " << spec;
    }
}

TEST(FuzzRoundTrip, EncodeIntoMatchesEncodeForEveryFactorySpec)
{
    std::vector<std::string> specs = paperSchemeSpecs();
    for (const char *stage : stage_pool)
        specs.push_back(stage);

    Rng rng(0x1207);
    for (const std::string &spec : specs)
        fuzzIntoMatchesAllocating(spec, 32, 4, rng);
}

TEST(FuzzRoundTrip, EncodeIntoMatchesEncodeOn64ByteCpuTransactions)
{
    std::vector<std::string> specs = paperSchemeSpecs();
    for (const char *stage : stage_pool)
        specs.push_back(stage);

    Rng rng(0x6464);
    for (const std::string &spec : specs)
        fuzzIntoMatchesAllocating(spec, 64, 8, rng);
}

TEST(FuzzRoundTrip, EncodeIntoMatchesEncodeForRandomPipelines)
{
    Rng rng(0x77aa);
    for (int pipeline = 0; pipeline < 25; ++pipeline)
        fuzzIntoMatchesAllocating(randomSpec(rng), 32, 4, rng);
}

TEST(FuzzRoundTrip, EncodedSizeAlwaysEqualsInputSize)
{
    // The schemes are codes, not compressors: payload size is invariant,
    // which is what lets DRAM store the encoded form in place.
    Rng rng(0x5151);
    for (int i = 0; i < 100; ++i) {
        const std::string spec = randomSpec(rng);
        CodecPtr codec = makeCodec(spec);
        const Transaction tx = randomTransaction(rng, 32);
        EXPECT_EQ(codec->encode(tx).payload.size(), tx.size()) << spec;
    }
}

/** Stages legal for a given transaction size (BaseXor needs > base bytes). */
std::vector<std::string>
stagesForSize(std::size_t tx_bytes)
{
    std::vector<std::string> stages = {"xor2",      "xor2+zdr", "xor4",
                                       "xor4+zdr",  "universal1",
                                       "universal2", "dbi1",    "dbi2",
                                       "dbi4",      "dbi-ac1",  "bd"};
    if (tx_bytes > 8) {
        stages.insert(stages.end(), {"xor8", "xor8+zdr", "xor4+fixed",
                                     "universal3+zdr"});
    }
    if (tx_bytes > 16)
        stages.insert(stages.end(), {"xor16", "universal4+zdr"});
    return stages;
}

/**
 * Round-trip coverage for every valid transaction size, not just the
 * 32-byte GPU sector: the 8-byte minimum, 16-byte sectors, and 64-byte CPU
 * cache lines (which exercise base sizes and fold depths the 32-byte
 * stream never reaches).
 */
TEST(FuzzRoundTrip, AllValidTransactionSizesRoundTrip)
{
    Rng rng(0x5123);
    for (std::size_t tx_bytes : {8u, 16u, 64u}) {
        const std::size_t bus_bytes = tx_bytes == 64 ? 8 : 4;
        for (const std::string &stage : stagesForSize(tx_bytes)) {
            CodecPtr codec = makeCodec(stage, bus_bytes);
            for (int i = 0; i < 60; ++i) {
                const Transaction tx = randomTransaction(rng, tx_bytes);
                const Encoded enc = codec->encode(tx);
                ASSERT_EQ(enc.payload.size(), tx.size()) << stage;
                ASSERT_EQ(codec->decode(enc), tx)
                    << "spec " << stage << " size " << tx_bytes << " tx "
                    << tx.toHex();
            }
        }
    }
}

/**
 * The documented error path for invalid sizes: Transaction supports
 * power-of-two sizes in [8, 64] only, and constructing anything else —
 * 1-byte, non-power-of-two, or beyond 64 bytes — must hit the release-mode
 * invariant check, not silently round or truncate.
 */
TEST(FuzzRoundTrip, InvalidTransactionSizesHitTheAssertPath)
{
    // The documented contract: power-of-two byte counts in [min, max].
    const auto valid = [](std::size_t n) {
        return n >= Transaction::minBytes && n <= Transaction::maxBytes &&
               (n & (n - 1)) == 0;
    };
    EXPECT_TRUE(valid(8) && valid(16) && valid(32) && valid(64));
    for (std::size_t bad : {0u, 1u, 2u, 4u, 12u, 24u, 48u, 65u, 128u}) {
        EXPECT_FALSE(valid(bad)) << bad;
        EXPECT_DEATH({ Transaction tx(bad); (void)tx; },
                     "assertion failed")
            << "size " << bad;
    }
}

/** fromHex is a fatal() user-error path, not an assert: exits with 1. */
TEST(FuzzRoundTrip, FromHexRejectsBadLengthsWithFatalError)
{
    // 1-byte and non-power-of-two byte counts are invalid input lengths.
    EXPECT_EXIT(Transaction::fromHex("ff"), ::testing::ExitedWithCode(1),
                "bad input length");
    EXPECT_EXIT(Transaction::fromHex("00112233445566"),
                ::testing::ExitedWithCode(1), "bad input length");
    EXPECT_EXIT(Transaction::fromHex(std::string(48, 'a')),
                ::testing::ExitedWithCode(1), "bad input length");
    EXPECT_EXIT(Transaction::fromHex("zz00112233445566"),
                ::testing::ExitedWithCode(1), "non-hex character");
}

/** A base as large as the whole transaction leaves nothing to XOR. */
TEST(FuzzRoundTrip, BaseSizeEqualToTransactionThrows)
{
    // Regression: geometry mismatches are recoverable typed errors, not
    // process-killing asserts (bxtd turns them into Malformed responses).
    CodecPtr codec = makeCodec("xor8");
    Transaction tx(8);
    EXPECT_THROW(codec->encode(tx), CodecSizeError);
}

} // namespace
} // namespace bxt
