/**
 * @file
 * Unit tests for the gate-level implementation cost model against the
 * published Table II values.
 */

#include <gtest/gtest.h>

#include "gatecost/encoder_costs.h"

namespace bxt {
namespace {

const GateLibrary lib = GateLibrary::tsmc16();

TEST(GateCounts, Accumulate)
{
    GateCounts a;
    a.xor2 = 10;
    a.or2 = 5;
    GateCounts b;
    b.xor2 = 2;
    b.mux2 = 3;
    a += b;
    EXPECT_EQ(a.xor2, 12u);
    EXPECT_EQ(a.total(), 20u);
}

TEST(BaseXorCost, EncodeLatencyIsOneXorLevel)
{
    for (std::size_t base : {2u, 4u, 8u}) {
        const SchemeCost cost = baseXorCost(lib, 32, base);
        EXPECT_DOUBLE_EQ(cost.encode.delayPs, 24.0) << base;
    }
}

TEST(BaseXorCost, DecodeLatencyIsChainOfElements)
{
    // Paper Table II: 360/168/72 ps for 2/4/8-byte bases on 32 B.
    EXPECT_DOUBLE_EQ(baseXorCost(lib, 32, 2).decode.delayPs, 360.0);
    EXPECT_DOUBLE_EQ(baseXorCost(lib, 32, 4).decode.delayPs, 168.0);
    EXPECT_DOUBLE_EQ(baseXorCost(lib, 32, 8).decode.delayPs, 72.0);
}

TEST(BaseXorCost, AreaNearPaperValues)
{
    // Paper: 214 / 289 / 341 um^2. The gate+wire model was calibrated on
    // these rows; allow 10 %.
    EXPECT_NEAR(baseXorCost(lib, 32, 2).encode.areaUm2, 214.0, 22.0);
    EXPECT_NEAR(baseXorCost(lib, 32, 4).encode.areaUm2, 289.0, 29.0);
    EXPECT_NEAR(baseXorCost(lib, 32, 8).encode.areaUm2, 341.0, 35.0);
}

TEST(BaseXorCost, EnergyNearPaperValues)
{
    // Paper: 43 / 73 / 97 fJ per 32 B.
    EXPECT_NEAR(baseXorCost(lib, 32, 2).encode.energyFj, 43.0, 5.0);
    EXPECT_NEAR(baseXorCost(lib, 32, 4).encode.energyFj, 73.0, 8.0);
    EXPECT_NEAR(baseXorCost(lib, 32, 8).encode.energyFj, 97.0, 12.0);
}

TEST(UniversalCost, LatenciesMatchPaper)
{
    const SchemeCost cost = universalXorCost(lib, 32, 3);
    EXPECT_DOUBLE_EQ(cost.encode.delayPs, 24.0);
    EXPECT_DOUBLE_EQ(cost.decode.delayPs, 72.0);
    EXPECT_EQ(cost.config, "3 stage");
}

TEST(UniversalCost, NearEightByteXorCost)
{
    // The paper's universal row (355 um^2, 98 fJ) sits within ~20 % of
    // the 8-byte XOR row; our model must agree in that band.
    const SchemeCost universal = universalXorCost(lib, 32, 3);
    EXPECT_NEAR(universal.encode.areaUm2, 355.0, 75.0);
    EXPECT_NEAR(universal.encode.energyFj, 98.0, 25.0);
}

TEST(ZdrCost, LatencyMatchesPaper)
{
    // Paper: 165 ps for the ZDR block (4-byte lanes).
    const SchemeCost cost = zdrCost(lib, 7, 4);
    EXPECT_DOUBLE_EQ(cost.encode.delayPs, 165.0);
    EXPECT_DOUBLE_EQ(cost.decode.delayPs, 165.0);
}

TEST(ZdrCost, AreaAndEnergyNearPaper)
{
    // Paper: 761 um^2, 103 fJ.
    const SchemeCost cost = zdrCost(lib, 7, 4);
    EXPECT_NEAR(cost.encode.areaUm2, 761.0, 80.0);
    EXPECT_NEAR(cost.encode.energyFj, 103.0, 12.0);
}

TEST(TableTwo, HasSevenRowsInPaperOrder)
{
    const auto rows = tableTwoCosts(lib, 32);
    ASSERT_EQ(rows.size(), 7u);
    EXPECT_EQ(rows[0].mechanism, "2-byte XOR");
    EXPECT_EQ(rows[3].mechanism, "Universal XOR");
    EXPECT_EQ(rows[4].mechanism, "ZDR");
    EXPECT_EQ(rows[6].mechanism, "Universal XOR+ZDR");
}

TEST(TableTwo, CombinedRowsAreAdditive)
{
    const auto rows = tableTwoCosts(lib, 32);
    // Paper Table II is exactly additive: 4B XOR+ZDR = 4B XOR + ZDR.
    EXPECT_NEAR(rows[5].encode.areaUm2,
                rows[1].encode.areaUm2 + rows[4].encode.areaUm2, 1e-9);
    EXPECT_NEAR(rows[6].encode.energyFj,
                rows[3].encode.energyFj + rows[4].encode.energyFj, 1e-9);
    EXPECT_NEAR(rows[6].decode.delayPs,
                rows[3].decode.delayPs + rows[4].decode.delayPs, 1e-9);
}

TEST(TableTwo, CombinedLatenciesMatchPaper)
{
    const auto rows = tableTwoCosts(lib, 32);
    // 4-byte XOR+ZDR: 189 / 333 ps; Universal+ZDR: 189 / 237 ps.
    EXPECT_DOUBLE_EQ(rows[5].encode.delayPs, 189.0);
    EXPECT_DOUBLE_EQ(rows[5].decode.delayPs, 333.0);
    EXPECT_DOUBLE_EQ(rows[6].encode.delayPs, 189.0);
    EXPECT_DOUBLE_EQ(rows[6].decode.delayPs, 237.0);
}

TEST(TableTwo, WorstDecodeFitsInOneDramClock)
{
    // The paper's feasibility claim: every latency < 400 ps (one GDDR5X
    // clock at 10 Gbps).
    for (const SchemeCost &row : tableTwoCosts(lib, 32)) {
        EXPECT_LT(row.encode.delayPs, 400.0) << row.mechanism;
        EXPECT_LT(row.decode.delayPs, 400.0) << row.mechanism;
    }
}

TEST(GpuTotalArea, MatchesPaperClaim)
{
    // Paper: 0.027 mm^2 for 12 channels of the most sophisticated
    // mechanism (<0.01 % of the die).
    const auto rows = tableTwoCosts(lib, 32);
    const double area = gpuTotalAreaMm2(rows.back(), 12);
    EXPECT_NEAR(area, 0.027, 0.006);
    const double die_mm2 = 471.0; // GP102.
    EXPECT_LT(area / die_mm2, 1e-4);
}

TEST(EvaluateNetlist, SeparatesWireAreaAndEnergy)
{
    GateCounts counts;
    counts.xor2 = 10;
    const CostEstimate with_wire_area =
        evaluateNetlist(lib, counts, 100.0, 0.0, 24.0);
    const CostEstimate with_wire_energy =
        evaluateNetlist(lib, counts, 0.0, 100.0, 24.0);
    EXPECT_GT(with_wire_area.areaUm2, with_wire_energy.areaUm2);
    EXPECT_LT(with_wire_area.energyFj, with_wire_energy.energyFj);
}

} // namespace
} // namespace bxt
