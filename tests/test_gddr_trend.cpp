/**
 * @file
 * Unit tests for the Figure 1 trend model.
 */

#include <gtest/gtest.h>

#include "energy/gddr_trend.h"

namespace bxt {
namespace {

TEST(GddrTrend, FourGenerations)
{
    const auto gens = gddrGenerations();
    ASSERT_EQ(gens.size(), 4u);
    EXPECT_EQ(gens.front().name, "GDDR5 6Gbps");
    EXPECT_EQ(gens.back().name, "GDDR5X 12Gbps");
}

TEST(GddrTrend, FirstGenerationIsReference)
{
    const auto trend = computeGddrTrend(gddrGenerations());
    EXPECT_DOUBLE_EQ(trend.front().energyPerBitPct, 100.0);
    EXPECT_DOUBLE_EQ(trend.front().bandwidthPct, 100.0);
    EXPECT_DOUBLE_EQ(trend.front().peakPowerPct, 100.0);
}

TEST(GddrTrend, MatchesPaperAnnotations)
{
    // Paper Figure 1: 81 % energy/bit, 200 % bandwidth, 163 % peak power
    // at GDDR5X 12 Gbps.
    const auto trend = computeGddrTrend(gddrGenerations());
    const GddrTrendPoint &last = trend.back();
    EXPECT_NEAR(last.energyPerBitPct, 81.0, 1.0);
    EXPECT_NEAR(last.bandwidthPct, 200.0, 0.1);
    EXPECT_NEAR(last.peakPowerPct, 163.0, 2.5);
}

TEST(GddrTrend, EnergyFallsWhilePowerRises)
{
    const auto trend = computeGddrTrend(gddrGenerations());
    for (std::size_t i = 1; i < trend.size(); ++i) {
        EXPECT_LT(trend[i].energyPerBitPct, trend[i - 1].energyPerBitPct);
        EXPECT_GT(trend[i].peakPowerPct, trend[i - 1].peakPowerPct);
        EXPECT_GT(trend[i].bandwidthPct, trend[i - 1].bandwidthPct);
    }
}

TEST(GddrTrend, PinCountCancelsInNormalization)
{
    const auto wide = computeGddrTrend(gddrGenerations(), 384);
    const auto narrow = computeGddrTrend(gddrGenerations(), 32);
    for (std::size_t i = 0; i < wide.size(); ++i)
        EXPECT_DOUBLE_EQ(wide[i].peakPowerPct, narrow[i].peakPowerPct);
}

} // namespace
} // namespace bxt
