/**
 * @file
 * Golden-vector regression suite: every checked-in file in tests/golden/
 * must exactly match what the current core codecs and Bus produce, and the
 * pinned figure endpoints must match a fresh evaluation bit-for-bit. Any
 * intentional encoding change regenerates the corpus with tools/gen_golden
 * and reviews the diff.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <set>
#include <string>

#include "suite_eval.h"
#include "verify/golden.h"
#include "workloads/apps.h"

namespace bxt {
namespace {

using verify::Endpoint;
using verify::checkGoldenFile;
using verify::goldenFileName;
using verify::goldenSpecs;
using verify::loadEndpoints;

std::string
goldenPath(const std::string &file)
{
    return std::string(BXT_GOLDEN_DIR) + "/" + file;
}

/** Every golden vector file re-verifies against the current build. */
TEST(Golden, AllVectorFilesMatchCurrentImplementation)
{
    std::size_t files = 0;
    for (unsigned wires : {32u, 64u}) {
        for (const std::string &spec : goldenSpecs(wires)) {
            const std::string path =
                goldenPath(goldenFileName(spec, wires));
            const std::vector<std::string> diffs = checkGoldenFile(path);
            ++files;
            for (const std::string &diff : diffs)
                ADD_FAILURE() << diff;
        }
    }
    EXPECT_GE(files, 17u);
}

/**
 * The corpus directory holds exactly the files goldenSpecs() implies (plus
 * endpoints.txt): a stray or missing file means gen_golden and the spec
 * table drifted apart.
 */
TEST(Golden, CorpusDirectoryMatchesSpecTable)
{
    std::set<std::string> expected = {"endpoints.txt"};
    for (unsigned wires : {32u, 64u}) {
        for (const std::string &spec : goldenSpecs(wires))
            expected.insert(goldenFileName(spec, wires));
    }

    std::set<std::string> present;
    for (const auto &entry :
         std::filesystem::directory_iterator(BXT_GOLDEN_DIR)) {
        if (entry.is_regular_file() &&
            entry.path().extension() == ".txt") {
            present.insert(entry.path().filename().string());
        }
    }
    EXPECT_EQ(present, expected);
}

/**
 * The pinned fig11/12/14 endpoints match a fresh evaluation. The suite
 * sweep is bit-deterministic for any thread count, so the comparison is
 * near-exact; the epsilon only absorbs the text round-trip through %.9f.
 */
TEST(Golden, FigureEndpointsMatchRecomputation)
{
    const std::vector<Endpoint> endpoints =
        loadEndpoints(goldenPath("endpoints.txt"));
    ASSERT_GE(endpoints.size(), 6u);

    std::set<std::string> spec_set;
    std::size_t tx_per_app = 0;
    for (const Endpoint &endpoint : endpoints) {
        spec_set.insert(endpoint.spec);
        ASSERT_GT(endpoint.txPerApp, 0u);
        if (tx_per_app == 0)
            tx_per_app = endpoint.txPerApp;
        ASSERT_EQ(endpoint.txPerApp, tx_per_app)
            << "endpoints pinned at mixed transaction counts";
    }

    std::vector<App> apps = buildGpuSuite();
    const std::vector<std::string> specs(spec_set.begin(), spec_set.end());
    const std::vector<AppResult> results =
        evalSuite(apps, specs, tx_per_app);

    for (const Endpoint &endpoint : endpoints) {
        const double fresh = meanNormalizedOnes(results, endpoint.spec);
        EXPECT_NEAR(fresh, endpoint.value, 1e-9)
            << endpoint.fig << " " << endpoint.spec
            << " drifted: pinned " << endpoint.value << " fresh " << fresh;
    }
}

} // namespace
} // namespace bxt
