/**
 * @file
 * Integration tests for the full GPU system pipeline (workload -> LLC ->
 * memory controller -> energy model).
 */

#include <gtest/gtest.h>

#include "gpusim/gpu_system.h"

namespace bxt {
namespace {

GpuConfig
tinyConfig(const std::string &codec)
{
    GpuConfig config = GpuConfig::titanXPascal();
    config.llcBytes = 64u << 10; // Keep runs quick.
    config.channels = 4;
    config.codecSpec = codec;
    return config;
}

GpuKernel
tinyKernel(std::uint64_t seed)
{
    GpuKernel kernel;
    kernel.name = "tiny";
    kernel.footprintBytes = 256u << 10;
    kernel.accesses = 20000;
    kernel.writeFraction = 0.3;
    kernel.randomFraction = 0.2;
    kernel.dataPattern = makeSoaFloatPattern(1.0e3, 1.0e-3, seed, 12);
    kernel.seed = seed;
    return kernel;
}

TEST(GpuSystem, RunProducesConsistentCounters)
{
    GpuSystem system(tinyConfig("universal3+zdr"));
    GpuKernel kernel = tinyKernel(1);
    const GpuRunReport report = system.run(kernel);

    // Producer pass + accesses all hit the cache layer.
    EXPECT_GE(report.cache.accesses,
              kernel.accesses + 256u * 1024u / 32u);
    // Everything that left the cache must have hit DRAM.
    EXPECT_EQ(report.mem.reads + report.mem.writes,
              report.cache.sectorMisses + report.cache.writebacks);
    // Every DRAM access moved one 32-byte sector over some channel.
    EXPECT_EQ(report.bus.transactions,
              report.mem.reads + report.mem.writes);
    EXPECT_EQ(report.bus.dataBits, report.bus.transactions * 256);
    EXPECT_GT(report.mem.activates, 0u);
    EXPECT_GT(report.mem.utilization(), 0.0);
    EXPECT_LE(report.mem.utilization(), 1.0);
}

TEST(GpuSystem, EnergyIsPositiveAndDecomposed)
{
    GpuSystem system(tinyConfig("baseline"));
    GpuKernel kernel = tinyKernel(2);
    const GpuRunReport report = system.run(kernel);
    EXPECT_GT(report.energy.total(), 0.0);
    EXPECT_GT(report.energy.ioOnes, 0.0);
    EXPECT_GT(report.energyPerBytePj(), 1.0);
    EXPECT_LT(report.energyPerBytePj(), 1000.0);
}

TEST(GpuSystem, DeterministicAcrossRuns)
{
    GpuSystem a(tinyConfig("universal3+zdr"));
    GpuSystem b(tinyConfig("universal3+zdr"));
    GpuKernel ka = tinyKernel(3);
    GpuKernel kb = tinyKernel(3);
    const GpuRunReport ra = a.run(ka);
    const GpuRunReport rb = b.run(kb);
    EXPECT_EQ(ra.bus.ones(), rb.bus.ones());
    EXPECT_EQ(ra.bus.toggles(), rb.bus.toggles());
    EXPECT_EQ(ra.mem.activates, rb.mem.activates);
    EXPECT_DOUBLE_EQ(ra.energy.total(), rb.energy.total());
}

TEST(GpuSystem, EncodingSavesEnergyOnSimilarData)
{
    // The same kernel on the same system, baseline vs universal: the
    // encoded run must move fewer ones and spend less total energy.
    GpuSystem baseline(tinyConfig("baseline"));
    GpuSystem encoded(tinyConfig("universal3+zdr"));
    GpuKernel k1 = tinyKernel(4);
    GpuKernel k2 = tinyKernel(4);
    const GpuRunReport rb = baseline.run(k1);
    const GpuRunReport re = encoded.run(k2);
    EXPECT_EQ(rb.bus.transactions, re.bus.transactions);
    EXPECT_LT(re.bus.ones(), rb.bus.ones());
    EXPECT_LT(re.energy.total(), rb.energy.total());
}

TEST(GpuSystem, ReferenceKernelsAreComplete)
{
    const std::vector<GpuKernel> kernels = makeReferenceKernels(7);
    ASSERT_EQ(kernels.size(), 5u);
    for (const GpuKernel &kernel : kernels) {
        EXPECT_FALSE(kernel.name.empty());
        EXPECT_NE(kernel.dataPattern, nullptr);
        EXPECT_GT(kernel.accesses, 0u);
        EXPECT_GT(kernel.footprintBytes, 0u);
    }
}

TEST(GpuSystem, ReportMentionsKernelAndCodec)
{
    GpuSystem system(tinyConfig("universal3+zdr"));
    GpuKernel kernel = tinyKernel(5);
    const GpuRunReport report = system.run(kernel);
    const std::string text = report.report();
    EXPECT_NE(text.find("tiny"), std::string::npos);
    EXPECT_NE(text.find("universal3+zdr"), std::string::npos);
    EXPECT_NE(text.find("energy"), std::string::npos);
}

TEST(GpuSystem, CpuDdr4SystemRoundTrips)
{
    GpuConfig config = GpuConfig::cpuDdr4();
    config.llcBytes = 64u << 10;
    config.codecSpec = "universal3+zdr";
    GpuSystem system(config);

    GpuKernel kernel;
    kernel.name = "cpu-kernel";
    kernel.footprintBytes = 256u << 10;
    kernel.accesses = 10000;
    kernel.writeFraction = 0.4;
    kernel.randomFraction = 0.3;
    kernel.dataPattern = makeSoaDoublePattern(1.0e3, 1.0e-3, 8, 24);
    kernel.seed = 8;

    // run() panics on any decode mismatch, so completing the run is the
    // core assertion; 64-byte transactions flow over a 64-bit bus.
    const GpuRunReport report = system.run(kernel);
    EXPECT_EQ(report.bus.dataBits, report.bus.transactions * 512);
    EXPECT_GT(report.energy.total(), 0.0);
}

TEST(GpuSystem, Table1ConfigReport)
{
    const GpuConfig config = GpuConfig::titanXPascal();
    EXPECT_DOUBLE_EQ(config.peakBandwidthGBps(), 480.0);
    const std::string report = config.report();
    EXPECT_NE(report.find("56 stream multiprocessors"), std::string::npos);
    EXPECT_NE(report.find("384 bit"), std::string::npos);
    EXPECT_NE(report.find("480"), std::string::npos);
}

} // namespace
} // namespace bxt
