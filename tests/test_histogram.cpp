/**
 * @file
 * Unit tests for common/histogram.h.
 */

#include <gtest/gtest.h>

#include "common/histogram.h"

namespace bxt {
namespace {

TEST(Histogram, BucketEdges)
{
    Histogram h(-80.0, 80.0, 8);
    EXPECT_EQ(h.buckets(), 8u);
    EXPECT_DOUBLE_EQ(h.bucketLo(0), -80.0);
    EXPECT_DOUBLE_EQ(h.bucketHi(0), -60.0);
    EXPECT_DOUBLE_EQ(h.bucketLo(7), 60.0);
    EXPECT_DOUBLE_EQ(h.bucketHi(7), 80.0);
}

TEST(Histogram, PlacesSamples)
{
    Histogram h(0.0, 10.0, 10);
    h.add(0.5);
    h.add(5.5);
    h.add(9.9);
    EXPECT_EQ(h.total(), 3u);
    EXPECT_EQ(h.bucketCount(0), 1u);
    EXPECT_EQ(h.bucketCount(5), 1u);
    EXPECT_EQ(h.bucketCount(9), 1u);
}

TEST(Histogram, ClampsOutOfRange)
{
    Histogram h(0.0, 10.0, 5);
    h.add(-100.0);
    h.add(100.0);
    h.add(10.0); // Exactly hi: clamps to last bucket.
    EXPECT_EQ(h.bucketCount(0), 1u);
    EXPECT_EQ(h.bucketCount(4), 2u);
}

TEST(Histogram, Fractions)
{
    Histogram h(0.0, 4.0, 4);
    h.add(0.5);
    h.add(1.5);
    h.add(1.6);
    h.add(3.5);
    EXPECT_DOUBLE_EQ(h.bucketFraction(0), 0.25);
    EXPECT_DOUBLE_EQ(h.bucketFraction(1), 0.5);
    EXPECT_DOUBLE_EQ(h.bucketFraction(2), 0.0);
}

TEST(Histogram, EmptyFractionIsZero)
{
    Histogram h(0.0, 1.0, 2);
    EXPECT_DOUBLE_EQ(h.bucketFraction(0), 0.0);
}

TEST(Histogram, RenderContainsCounts)
{
    Histogram h(0.0, 2.0, 2);
    h.add(0.5);
    h.add(0.6);
    const std::string out = h.render(10);
    EXPECT_NE(out.find("2"), std::string::npos);
    EXPECT_NE(out.find("##"), std::string::npos);
}

} // namespace
} // namespace bxt
