/**
 * @file
 * Cross-module integration and invariant tests: every paper scheme over a
 * sample of the real workload population, checking losslessness and the
 * qualitative relationships the paper's evaluation rests on.
 */

#include <gtest/gtest.h>

#include "channel/channel_eval.h"
#include "core/codec_factory.h"
#include "workloads/apps.h"

namespace bxt {
namespace {

/** A reduced population for quick integration runs. */
std::vector<App>
sampleSuite(std::size_t stride = 12)
{
    std::vector<App> all = buildGpuSuite();
    std::vector<App> sample;
    for (std::size_t i = 0; i < all.size(); i += stride)
        sample.push_back(std::move(all[i]));
    return sample;
}

class SchemeOnSuite : public testing::TestWithParam<std::string>
{
};

TEST_P(SchemeOnSuite, LosslessOverWorkloadSample)
{
    // evalCodecOnStream panics on any decode mismatch, so simply driving
    // it over real workload data is the assertion.
    std::vector<App> apps = sampleSuite();
    CodecPtr codec = makeCodec(GetParam());
    for (App &app : apps) {
        const auto trace = generateTrace(app, 256);
        const auto result = evalCodecOnStream(*codec, trace, 32);
        EXPECT_EQ(result.stats.transactions, trace.size());
    }
}

INSTANTIATE_TEST_SUITE_P(
    PaperSchemes, SchemeOnSuite,
    testing::Values("baseline", "dbi4", "dbi2", "dbi1", "xor2+zdr",
                    "xor4+zdr", "xor8+zdr", "xor4", "universal3+zdr",
                    "universal3", "universal3+zdr|dbi1", "bd",
                    "xor4+zdr+fixed"));

TEST(Integration, UniversalBeatsBaselineOnPopulation)
{
    std::vector<App> apps = sampleSuite(6);
    CodecPtr universal = makeCodec("universal3+zdr");
    std::uint64_t raw = 0;
    std::uint64_t encoded = 0;
    for (App &app : apps) {
        const auto trace = generateTrace(app, 512);
        const auto result = evalCodecOnStream(*universal, trace, 32);
        raw += result.rawOnes;
        encoded += result.stats.ones();
    }
    // The paper's headline: a large ones reduction on GPU data (35.3 %).
    EXPECT_LT(static_cast<double>(encoded), 0.8 * static_cast<double>(raw));
}

TEST(Integration, CombinedSchemeBeatsEitherAlone)
{
    std::vector<App> apps = sampleSuite(6);
    std::uint64_t dbi_ones = 0;
    std::uint64_t universal_ones = 0;
    std::uint64_t combined_ones = 0;
    for (App &app : apps) {
        const auto trace = generateTrace(app, 512);
        CodecPtr dbi = makeCodec("dbi1");
        CodecPtr universal = makeCodec("universal3+zdr");
        CodecPtr combined = makeCodec("universal3+zdr|dbi1");
        dbi_ones += evalCodecOnStream(*dbi, trace, 32).stats.ones();
        universal_ones +=
            evalCodecOnStream(*universal, trace, 32).stats.ones();
        combined_ones +=
            evalCodecOnStream(*combined, trace, 32).stats.ones();
    }
    EXPECT_LT(combined_ones, dbi_ones);
    EXPECT_LT(combined_ones, universal_ones);
}

TEST(Integration, ZdrRescuesZeroHeavyWorkloads)
{
    // On the sparse-zero family, plain 4-byte XOR regresses while
    // XOR+ZDR does not (paper Figure 14's message).
    std::vector<App> all = buildGpuSuite();
    CodecPtr plain = makeCodec("xor4");
    CodecPtr zdr = makeCodec("xor4+zdr");
    std::uint64_t raw = 0;
    std::uint64_t plain_ones = 0;
    std::uint64_t zdr_ones = 0;
    for (App &app : all) {
        if (app.family != "sparse-zero")
            continue;
        const auto trace = generateTrace(app, 256);
        const auto p = evalCodecOnStream(*plain, trace, 32);
        const auto z = evalCodecOnStream(*zdr, trace, 32);
        raw += p.rawOnes;
        plain_ones += p.stats.ones();
        zdr_ones += z.stats.ones();
    }
    ASSERT_GT(raw, 0u);
    EXPECT_LT(zdr_ones, plain_ones);
    EXPECT_LT(static_cast<double>(zdr_ones), 1.05 * raw);
}

TEST(Integration, DbiGroupSizeOrderingHolds)
{
    // Smaller DBI groups remove more ones (at more metadata cost):
    // dbi1 <= dbi2 <= dbi4 in total ones, as in Figure 15.
    std::vector<App> apps = sampleSuite(6);
    std::uint64_t ones[3] = {0, 0, 0};
    const char *specs[3] = {"dbi1", "dbi2", "dbi4"};
    for (App &app : apps) {
        const auto trace = generateTrace(app, 512);
        for (int i = 0; i < 3; ++i) {
            CodecPtr codec = makeCodec(specs[i]);
            ones[static_cast<std::size_t>(i)] +=
                evalCodecOnStream(*codec, trace, 32).stats.ones();
        }
    }
    EXPECT_LE(ones[0], ones[1]);
    EXPECT_LE(ones[1], ones[2]);
}

TEST(Integration, CpuSuiteRoundTripsAt64Bytes)
{
    std::vector<App> apps = buildCpuSuite();
    CodecPtr codec = makeCodec("universal3+zdr", 8);
    for (App &app : apps) {
        const auto trace = generateTrace(app, 128);
        const auto result = evalCodecOnStream(*codec, trace, 64);
        EXPECT_EQ(result.stats.beats, 128u * 8u) << app.name;
    }
}

TEST(Integration, MetadataSchemesPayOnIncompressibleData)
{
    // On incompressible data, metadata-bearing schemes transmit *more*
    // total ones than the baseline — the paper's argument for
    // metadata-free encoding.
    std::vector<App> all = buildGpuSuite();
    for (App &app : all) {
        if (app.family != "incompressible")
            continue;
        const auto trace = generateTrace(app, 512);
        CodecPtr baseline = makeCodec("baseline");
        CodecPtr universal = makeCodec("universal3+zdr");
        const auto base = evalCodecOnStream(*baseline, trace, 32);
        const auto univ = evalCodecOnStream(*universal, trace, 32);
        // Metadata-free universal stays within noise of the baseline.
        EXPECT_LT(univ.normalizedOnes(), 1.02);
        (void)base;
        break; // One app suffices.
    }
}

} // namespace
} // namespace bxt
