/**
 * @file
 * Unit tests for the encoding memory controller + DRAM device model.
 */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "gpusim/memctrl.h"

namespace bxt {
namespace {

GpuConfig
smallConfig(const std::string &codec)
{
    GpuConfig config = GpuConfig::titanXPascal();
    config.channels = 2;
    config.banksPerChannel = 4;
    config.codecSpec = codec;
    return config;
}

Transaction
pattern(std::uint32_t tag)
{
    Transaction tx(32);
    for (std::size_t off = 0; off < 32; off += 4)
        tx.setWord32(off, tag ^ (static_cast<std::uint32_t>(off) << 8));
    return tx;
}

TEST(MemCtrl, WriteThenReadReturnsData)
{
    MemoryController mc(smallConfig("universal3+zdr"));
    mc.writeSector(0, pattern(0xaaaa0001));
    mc.writeSector(32, pattern(0xbbbb0002));
    EXPECT_EQ(mc.readSector(0), pattern(0xaaaa0001));
    EXPECT_EQ(mc.readSector(32), pattern(0xbbbb0002));
}

TEST(MemCtrl, UntouchedMemoryReadsZero)
{
    MemoryController mc(smallConfig("universal3+zdr"));
    EXPECT_EQ(mc.readSector(4096), Transaction(32));
}

TEST(MemCtrl, CountsReadsAndWrites)
{
    MemoryController mc(smallConfig("baseline"));
    mc.writeSector(0, pattern(1));
    mc.writeSector(256, pattern(2));
    (void)mc.readSector(0);
    const MemCtrlStats stats = mc.stats();
    EXPECT_EQ(stats.writes, 2u);
    EXPECT_EQ(stats.reads, 1u);
}

TEST(MemCtrl, RowHitsAndActivates)
{
    GpuConfig config = smallConfig("baseline");
    MemoryController mc(config);
    // Sequential sectors in one 256-byte interleave block share a row.
    mc.writeSector(0, pattern(1));   // ACT (cold bank).
    mc.writeSector(32, pattern(2));  // Row hit.
    mc.writeSector(64, pattern(3));  // Row hit.
    const MemCtrlStats stats = mc.stats();
    EXPECT_EQ(stats.activates, 1u);
    EXPECT_EQ(stats.rowHits, 2u);
    EXPECT_GT(stats.utilization(), 0.0);
}

TEST(MemCtrl, ChannelInterleaveSpreadsTraffic)
{
    GpuConfig config = smallConfig("baseline");
    MemoryController mc(config);
    // 256-byte interleave, 2 channels: addresses 0 and 256 hit different
    // channels, so each channel sees one activate.
    mc.writeSector(0, pattern(1));
    mc.writeSector(256, pattern(2));
    EXPECT_EQ(mc.stats().activates, 2u);
}

TEST(MemCtrl, BusStatsCountWireActivity)
{
    MemoryController mc(smallConfig("baseline"));
    Transaction tx(32);
    tx.data()[0] = 0xff;
    mc.writeSector(0, tx);
    EXPECT_EQ(mc.busStats().dataOnes, 8u);
    (void)mc.readSector(0);
    EXPECT_EQ(mc.busStats().dataOnes, 16u); // Write + read transfers.
}

TEST(MemCtrl, EncodedSchemeMovesFewerOnes)
{
    // Self-similar data: the encoded controller must put fewer ones on
    // the wire than the baseline controller for identical traffic.
    MemoryController baseline(smallConfig("baseline"));
    MemoryController encoded(smallConfig("universal3+zdr"));
    Rng rng(3);
    for (int i = 0; i < 200; ++i) {
        Transaction tx(32);
        const std::uint32_t base = static_cast<std::uint32_t>(rng.next64());
        for (std::size_t off = 0; off < 32; off += 4)
            tx.setWord32(off, base + static_cast<std::uint32_t>(
                                         rng.nextBounded(8)));
        const std::uint64_t addr = (i % 64) * 32;
        baseline.writeSector(addr, tx);
        encoded.writeSector(addr, tx);
        EXPECT_EQ(encoded.readSector(addr), tx);
        EXPECT_EQ(baseline.readSector(addr), tx);
    }
    EXPECT_LT(encoded.busStats().ones(), baseline.busStats().ones());
}

TEST(MemCtrl, StatefulBdCodecRoundTrips)
{
    // BD-Encoding cannot store encoded data; the controller must fall
    // back to raw storage with link-layer re-encoding and still return
    // correct data in arbitrary read order.
    MemoryController mc(smallConfig("bd"));
    Rng rng(5);
    std::vector<Transaction> written;
    for (int i = 0; i < 64; ++i) {
        Transaction tx(32);
        for (std::size_t off = 0; off < 32; off += 8)
            tx.setWord64(off, rng.next64());
        mc.writeSector(static_cast<std::uint64_t>(i) * 32, tx);
        written.push_back(tx);
    }
    // Read back in reverse order.
    for (int i = 63; i >= 0; --i) {
        EXPECT_EQ(mc.readSector(static_cast<std::uint64_t>(i) * 32),
                  written[static_cast<std::size_t>(i)]);
    }
}

TEST(MemCtrl, DbiMetadataWiresAccounted)
{
    MemoryController mc(smallConfig("dbi1"));
    Transaction tx(32);
    for (std::size_t i = 0; i < 32; ++i)
        tx.data()[i] = 0xff;
    mc.writeSector(0, tx);
    const BusStats stats = mc.busStats();
    EXPECT_EQ(stats.dataOnes, 0u);  // Everything inverted.
    EXPECT_EQ(stats.metaOnes, 32u); // Polarity wires carry the ones.
}

TEST(MemCtrl, OverwriteReplacesStoredData)
{
    MemoryController mc(smallConfig("universal3+zdr"));
    mc.writeSector(64, pattern(1));
    mc.writeSector(64, pattern(2));
    EXPECT_EQ(mc.readSector(64), pattern(2));
}

TEST(MemCtrl, CodecNameExposed)
{
    EXPECT_EQ(MemoryController(smallConfig("universal3+zdr")).codecName(),
              "universal3+zdr");
}

} // namespace
} // namespace bxt
