/**
 * @file
 * Unit tests for the ThreadPool / parallelFor primitives and the
 * determinism guarantee of the batch-parallel suite evaluation engine:
 * a parallel evalSuite run must be bit-identical to a 1-thread run.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "common/parallel.h"
#include "suite_eval.h"
#include "workloads/apps.h"

namespace bxt {
namespace {

TEST(ParseThreadCount, AcceptsPositiveIntegers)
{
    EXPECT_EQ(parseThreadCount("1"), 1u);
    EXPECT_EQ(parseThreadCount("8"), 8u);
    EXPECT_EQ(parseThreadCount("256"), 256u);
}

TEST(ParseThreadCount, RejectsGarbageZeroAndOutOfRange)
{
    EXPECT_EQ(parseThreadCount(nullptr), 0u);
    EXPECT_EQ(parseThreadCount(""), 0u);
    EXPECT_EQ(parseThreadCount("0"), 0u);
    EXPECT_EQ(parseThreadCount("-4"), 0u);
    EXPECT_EQ(parseThreadCount("4x"), 0u);
    EXPECT_EQ(parseThreadCount("257"), 0u);
    EXPECT_EQ(parseThreadCount("999999999999"), 0u);
}

TEST(DefaultThreadCount, HonorsEnvironmentOverride)
{
    ::setenv("BXT_THREADS", "3", 1);
    EXPECT_EQ(defaultThreadCount(), 3u);
    ::setenv("BXT_THREADS", "not-a-number", 1);
    EXPECT_GE(defaultThreadCount(), 1u); // Falls back to hardware count.
    ::unsetenv("BXT_THREADS");
    EXPECT_GE(defaultThreadCount(), 1u);
}

TEST(ThreadPool, RunsEveryIndexExactlyOnce)
{
    for (unsigned threads : {1u, 2u, 4u, 7u}) {
        ThreadPool pool(threads);
        EXPECT_EQ(pool.threadCount(), threads);

        constexpr std::size_t count = 10007;
        std::vector<std::atomic<int>> hits(count);
        pool.run(count, [&](std::size_t i) {
            hits[i].fetch_add(1, std::memory_order_relaxed);
        });
        for (std::size_t i = 0; i < count; ++i)
            ASSERT_EQ(hits[i].load(), 1) << "index " << i << " threads "
                                         << threads;
    }
}

TEST(ThreadPool, HandlesZeroAndTinyCounts)
{
    ThreadPool pool(4);
    std::atomic<int> calls{0};
    pool.run(0, [&](std::size_t) { calls.fetch_add(1); });
    EXPECT_EQ(calls.load(), 0);
    pool.run(1, [&](std::size_t) { calls.fetch_add(1); });
    EXPECT_EQ(calls.load(), 1);
    pool.run(2, [&](std::size_t) { calls.fetch_add(1); });
    EXPECT_EQ(calls.load(), 3);
}

TEST(ThreadPool, IsReusableAcrossJobs)
{
    ThreadPool pool(3);
    std::atomic<std::uint64_t> sum{0};
    for (int round = 0; round < 20; ++round) {
        pool.run(100, [&](std::size_t i) {
            sum.fetch_add(i, std::memory_order_relaxed);
        });
    }
    EXPECT_EQ(sum.load(), 20ull * (99ull * 100ull / 2ull));
}

TEST(ThreadPool, PropagatesTheFirstException)
{
    for (unsigned threads : {1u, 4u}) {
        ThreadPool pool(threads);
        EXPECT_THROW(pool.run(64,
                              [&](std::size_t i) {
                                  if (i == 13)
                                      throw std::runtime_error("boom");
                              }),
                     std::runtime_error);
        // The pool must stay usable after a failed job.
        std::atomic<int> calls{0};
        pool.run(8, [&](std::size_t) { calls.fetch_add(1); });
        EXPECT_EQ(calls.load(), 8);
    }
}

TEST(ParallelFor, GlobalPoolCoversAllIndices)
{
    constexpr std::size_t count = 4096;
    std::vector<int> hits(count, 0);
    parallelFor(count, [&](std::size_t i) { hits[i] += 1; });
    EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0),
              static_cast<int>(count));
}

/** Small app sample spanning both suites (GPU 32 B and CPU 64 B). */
std::vector<App>
sampleApps()
{
    std::vector<App> gpu = buildGpuSuite();
    std::vector<App> cpu = buildCpuSuite();
    std::vector<App> sample;
    sample.push_back(std::move(gpu[0]));
    sample.push_back(std::move(gpu[41]));
    sample.push_back(std::move(gpu[120]));
    sample.push_back(std::move(cpu[0]));
    sample.push_back(std::move(cpu[7]));
    return sample;
}

TEST(SuiteEvalDeterminism, ParallelMatchesSerialBitForBit)
{
    const std::vector<std::string> specs = {"baseline", "universal3+zdr",
                                            "universal3+zdr|dbi1", "bd"};

    std::vector<App> serial_apps = sampleApps();
    const auto serial = evalSuite(serial_apps, specs, 96, /*threads=*/1);

    for (unsigned threads : {2u, 5u, 8u}) {
        std::vector<App> apps = sampleApps();
        const auto parallel = evalSuite(apps, specs, 96, threads);
        ASSERT_EQ(parallel.size(), serial.size());
        for (std::size_t a = 0; a < serial.size(); ++a) {
            EXPECT_EQ(parallel[a].app, serial[a].app);
            EXPECT_EQ(parallel[a].rawOnes, serial[a].rawOnes);
            EXPECT_EQ(parallel[a].mixedRatio, serial[a].mixedRatio);
            ASSERT_EQ(parallel[a].stats.size(), serial[a].stats.size());
            for (const auto &[spec, stats] : serial[a].stats) {
                ASSERT_TRUE(parallel[a].stats.count(spec));
                EXPECT_EQ(parallel[a].stats.at(spec), stats)
                    << parallel[a].app << " / " << spec << " with "
                    << threads << " threads";
            }
        }
    }
}

TEST(SuiteEvalDeterminism, RawOnesIsAPropertyOfTheTraceNotTheSpecs)
{
    // rawOnes must not depend on which specs run (it is computed once
    // per app from the unencoded trace).
    std::vector<App> apps_a = sampleApps();
    std::vector<App> apps_b = sampleApps();
    const auto with_one = evalSuite(apps_a, {"baseline"}, 64, 1);
    const auto with_two =
        evalSuite(apps_b, {"baseline", "dbi1"}, 64, 2);
    ASSERT_EQ(with_one.size(), with_two.size());
    for (std::size_t a = 0; a < with_one.size(); ++a) {
        EXPECT_GT(with_one[a].rawOnes, 0u);
        EXPECT_EQ(with_one[a].rawOnes, with_two[a].rawOnes);
    }
}

} // namespace
} // namespace bxt
