/**
 * @file
 * Unit tests for the workload data-pattern generators: determinism and
 * the statistical properties each family is designed to exhibit.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "common/bitops.h"
#include "core/transaction.h"
#include "workloads/patterns.h"

namespace bxt {
namespace {

std::vector<std::uint8_t>
generate(Pattern &pattern, std::size_t transactions, std::size_t tx_bytes)
{
    Rng rng(1);
    std::vector<std::uint8_t> out(transactions * tx_bytes);
    for (std::size_t i = 0; i < transactions; ++i)
        pattern.fill(rng, {out.data() + i * tx_bytes, tx_bytes});
    return out;
}

TEST(Patterns, SameSeedSameStream)
{
    PatternPtr a = makeSoaFloatPattern(1e3, 1e-3, 42);
    PatternPtr b = makeSoaFloatPattern(1e3, 1e-3, 42);
    EXPECT_EQ(generate(*a, 16, 32), generate(*b, 16, 32));
}

TEST(Patterns, DifferentSeedsDiffer)
{
    PatternPtr a = makeSoaFloatPattern(1e3, 1e-3, 1);
    PatternPtr b = makeSoaFloatPattern(1e3, 1e-3, 2);
    EXPECT_NE(generate(*a, 16, 32), generate(*b, 16, 32));
}

TEST(Patterns, SoaFloatAdjacentElementsShareTopBytes)
{
    PatternPtr p = makeSoaFloatPattern(1e3, 1e-4, 7);
    const auto data = generate(*p, 64, 32);
    std::size_t matches = 0;
    std::size_t pairs = 0;
    for (std::size_t off = 0; off + 8 <= data.size(); off += 4) {
        // Compare the top two bytes (sign/exponent/upper mantissa) of
        // adjacent fp32 elements.
        if (data[off + 2] == data[off + 6] && data[off + 3] == data[off + 7])
            ++matches;
        ++pairs;
    }
    EXPECT_GT(static_cast<double>(matches) / pairs, 0.8);
}

TEST(Patterns, QuantizationZeroesLowMantissaBits)
{
    PatternPtr p = makeSoaFloatPattern(1e3, 1e-3, 7, /*quant_bits=*/10);
    const auto data = generate(*p, 32, 32);
    // With 10 significant bits, the low 13 mantissa bits of every fp32
    // are zero -> the lowest byte must always be zero.
    for (std::size_t off = 0; off < data.size(); off += 4)
        EXPECT_EQ(data[off], 0) << "offset " << off;
}

TEST(Patterns, VecFloatHasPeriodicComponents)
{
    PatternPtr p = makeVecFloatPattern(4, 4, 1e-4, 9);
    const auto data = generate(*p, 64, 32);
    // Elements 16 bytes apart are the same component: top bytes match
    // far more often than elements 4 bytes apart.
    std::size_t same_component = 0;
    std::size_t next_component = 0;
    std::size_t samples = 0;
    for (std::size_t off = 0; off + 20 <= data.size(); off += 4) {
        same_component += (off + 19 < data.size() &&
                           data[off + 3] == data[off + 19])
                              ? 1
                              : 0;
        next_component += data[off + 3] == data[off + 7] ? 1 : 0;
        ++samples;
    }
    EXPECT_GT(same_component, next_component);
}

TEST(Patterns, IntStrideAdvances)
{
    PatternPtr p = makeIntStridePattern(4, 2, 0, 11);
    const auto data = generate(*p, 1, 32);
    std::uint32_t prev;
    std::memcpy(&prev, data.data(), 4);
    for (std::size_t off = 4; off < 32; off += 4) {
        std::uint32_t value;
        std::memcpy(&value, data.data() + off, 4);
        EXPECT_EQ(value, prev + 2);
        prev = value;
    }
}

TEST(Patterns, IntStrideValueBitsBoundsMagnitude)
{
    PatternPtr p = makeIntStridePattern(4, 1, 0, 13, /*value_bits=*/14);
    const auto data = generate(*p, 4, 32);
    std::uint32_t first;
    std::memcpy(&first, data.data(), 4);
    EXPECT_LT(first, 1u << 14);
}

TEST(Patterns, PointerTopsAreConstant)
{
    PatternPtr p = makePointerPattern(0x00007f0000000000ull, 1u << 20, 15);
    const auto data = generate(*p, 16, 32);
    for (std::size_t off = 0; off < data.size(); off += 8) {
        std::uint64_t ptr;
        std::memcpy(&ptr, data.data() + off, 8);
        EXPECT_EQ(ptr >> 24, 0x00007f0000000000ull >> 24);
        EXPECT_EQ(ptr % 8, 0u); // Aligned.
    }
}

TEST(Patterns, RandomIsBalanced)
{
    PatternPtr p = makeRandomPattern(17);
    const auto data = generate(*p, 256, 32);
    const double density =
        static_cast<double>(popcountBytes(data)) / (data.size() * 8.0);
    EXPECT_NEAR(density, 0.5, 0.01);
}

TEST(Patterns, ConstantElemRepeats)
{
    PatternPtr p = makeConstantElemPattern(4, 0.0, 19);
    const auto data = generate(*p, 4, 32);
    for (std::size_t off = 4; off < data.size(); off += 4)
        EXPECT_EQ(std::memcmp(data.data(), data.data() + off, 4), 0);
}

TEST(Patterns, RgbaAlphaChannel)
{
    PatternPtr p = makeRgbaPixelPattern(4, 0xfe, 21);
    const auto data = generate(*p, 16, 32);
    for (std::size_t off = 3; off < data.size(); off += 4)
        EXPECT_EQ(data[off], 0xfe);
}

TEST(Patterns, DepthBufferValuesInUnitRange)
{
    PatternPtr p = makeDepthBufferPattern(0.5, 1e-4, 23);
    const auto data = generate(*p, 32, 32);
    for (std::size_t off = 0; off < data.size(); off += 4) {
        float z;
        std::memcpy(&z, data.data() + off, 4);
        EXPECT_GE(z, 0.0f);
        EXPECT_LE(z, 1.0f);
    }
}

TEST(Patterns, TextIsPrintableAscii)
{
    PatternPtr p = makeTextPattern(25);
    const auto data = generate(*p, 16, 64);
    for (std::uint8_t byte : data) {
        EXPECT_GE(byte, 0x20);
        EXPECT_LT(byte, 0x7f);
    }
}

TEST(Patterns, EnumBytesBounded)
{
    PatternPtr p = makeEnumBytePattern(5, 27);
    const auto data = generate(*p, 64, 32);
    for (std::uint8_t byte : data)
        EXPECT_LT(byte, 5);
}

TEST(Patterns, ZeroMixedZeroesElements)
{
    PatternPtr p = makeZeroMixedPattern(makeRandomPattern(29), 4, 0.5, 31);
    const auto data = generate(*p, 512, 32);
    std::size_t zero_elements = 0;
    std::size_t elements = 0;
    for (std::size_t off = 0; off + 4 <= data.size(); off += 4) {
        zero_elements += allZero(data.data() + off, 4) ? 1 : 0;
        ++elements;
    }
    const double ratio =
        static_cast<double>(zero_elements) / static_cast<double>(elements);
    EXPECT_NEAR(ratio, 0.5, 0.05);
}

TEST(Patterns, ZeroBurstEmitsAllZeroTransactions)
{
    PatternPtr p =
        makeZeroBurstPattern(makeRandomPattern(33), 0.5, 4, 35);
    Rng rng(1);
    std::size_t zero_txs = 0;
    for (int i = 0; i < 256; ++i) {
        Transaction tx(32);
        p->fill(rng, tx.bytes());
        zero_txs += tx.isZero() ? 1 : 0;
    }
    EXPECT_GT(zero_txs, 64u);
    EXPECT_LT(zero_txs, 256u);
}

TEST(Patterns, MixDrawsFromAllMembers)
{
    std::vector<std::pair<PatternPtr, double>> members;
    members.emplace_back(makeConstantElemPattern(4, 0.0, 1), 0.5);
    members.emplace_back(makeTextPattern(2), 0.5);
    PatternPtr mix = makeMixPattern(std::move(members), 0.5, 37);
    Rng rng(1);
    bool saw_text = false;
    bool saw_constant = false;
    for (int i = 0; i < 200; ++i) {
        Transaction tx(32);
        mix->fill(rng, tx.bytes());
        bool ascii = true;
        for (std::uint8_t b : tx.bytes())
            ascii = ascii && b >= 0x20 && b < 0x7f;
        if (ascii)
            saw_text = true;
        else
            saw_constant = true;
    }
    EXPECT_TRUE(saw_text);
    EXPECT_TRUE(saw_constant);
}

TEST(Patterns, HalfFloatSimilarTopBytes)
{
    PatternPtr p = makeHalfFloatPattern(1.0, 1e-3, 39);
    const auto data = generate(*p, 64, 32);
    std::size_t matches = 0;
    std::size_t pairs = 0;
    for (std::size_t off = 0; off + 4 <= data.size(); off += 2) {
        matches += data[off + 1] == data[off + 3] ? 1 : 0;
        ++pairs;
    }
    EXPECT_GT(static_cast<double>(matches) / pairs, 0.7);
}

TEST(Patterns, NamesAreStable)
{
    EXPECT_EQ(makeSoaFloatPattern(1, 1e-3, 1)->name(), "soa-fp32");
    EXPECT_EQ(makeVecFloatPattern(3, 4, 1e-3, 1)->name(), "vec3-fp32");
    EXPECT_EQ(makeVecFloatPattern(2, 8, 1e-3, 1)->name(), "vec2-fp64");
    EXPECT_EQ(makeEnumBytePattern(4, 1)->name(), "enum-bytes");
    EXPECT_EQ(makeZeroMixedPattern(makeRandomPattern(1), 4, 0.1, 2)->name(),
              "random+zeros");
}

} // namespace
} // namespace bxt
