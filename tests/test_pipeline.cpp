/**
 * @file
 * Unit tests for PipelineCodec composition (the paper's "Universal
 * Base+XOR Transfer with ZDR followed by DBI").
 */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/base_xor.h"
#include "core/bd_encoding.h"
#include "core/codec_factory.h"
#include "core/dbi.h"
#include "core/pipeline.h"
#include "core/universal_xor.h"

namespace bxt {
namespace {

PipelineCodec
makeUniversalDbi(std::size_t dbi_group)
{
    return PipelineCodec(std::make_unique<UniversalXorCodec>(3, true),
                         std::make_unique<DbiCodec>(dbi_group, 4));
}

TEST(Pipeline, NameJoinsStages)
{
    EXPECT_EQ(makeUniversalDbi(1).name(), "universal3+zdr|dbi1");
}

TEST(Pipeline, MetaWiresAreSummed)
{
    EXPECT_EQ(makeUniversalDbi(1).metaWiresPerBeat(), 4u);
    EXPECT_EQ(makeUniversalDbi(4).metaWiresPerBeat(), 1u);
}

TEST(Pipeline, SecondStageSeesFirstStageOutput)
{
    // A ones-heavy but self-similar transaction: universal folds it to
    // mostly zero, so DBI afterwards should invert (almost) nothing.
    Transaction tx(32);
    for (std::size_t off = 0; off < 32; off += 4)
        tx.setWord32(off, 0xfdfdfdfd);
    PipelineCodec pipeline = makeUniversalDbi(1);
    const Encoded enc = pipeline.encode(tx);
    // Only the 4-byte effective base can still be ones-heavy: at most
    // 4 groups inverted across all beats.
    EXPECT_LE(enc.metaOnes(), 4u);
    EXPECT_EQ(pipeline.decode(enc), tx);
}

TEST(Pipeline, RoundTripRandom)
{
    PipelineCodec pipeline = makeUniversalDbi(1);
    Rng rng(41);
    for (int trial = 0; trial < 500; ++trial) {
        Transaction tx(32);
        for (std::size_t off = 0; off < 32; off += 8)
            tx.setWord64(off, rng.next64());
        const Encoded enc = pipeline.encode(tx);
        ASSERT_EQ(pipeline.decode(enc), tx);
    }
}

TEST(Pipeline, CombinedNeverWorseThanDbiAloneOnSimilarData)
{
    // The headline claim of Figure 15: Universal+DBI < DBI on data with
    // intra-transaction similarity.
    Rng rng(43);
    DbiCodec dbi_alone(1, 4);
    PipelineCodec combined = makeUniversalDbi(1);
    std::uint64_t dbi_ones = 0;
    std::uint64_t combined_ones = 0;
    for (int trial = 0; trial < 200; ++trial) {
        Transaction tx(32);
        const std::uint32_t base =
            static_cast<std::uint32_t>(rng.next64());
        for (std::size_t off = 0; off < 32; off += 4)
            tx.setWord32(off, base + static_cast<std::uint32_t>(
                                         rng.nextBounded(16)));
        dbi_ones += dbi_alone.encode(tx).ones();
        combined_ones += combined.encode(tx).ones();
    }
    EXPECT_LT(combined_ones, dbi_ones);
}

TEST(Pipeline, ThreeStageComposition)
{
    std::vector<CodecPtr> stages;
    stages.push_back(std::make_unique<BaseXorCodec>(8, true));
    stages.push_back(std::make_unique<UniversalXorCodec>(2, false));
    stages.push_back(std::make_unique<DbiCodec>(2, 4));
    PipelineCodec pipeline(std::move(stages));
    EXPECT_EQ(pipeline.metaWiresPerBeat(), 2u);

    Rng rng(47);
    for (int trial = 0; trial < 200; ++trial) {
        Transaction tx(32);
        for (std::size_t off = 0; off < 32; off += 8)
            tx.setWord64(off, rng.next64());
        const Encoded enc = pipeline.encode(tx);
        ASSERT_EQ(pipeline.decode(enc), tx);
    }
}

TEST(Pipeline, StatefulStagePropagatesStatelessness)
{
    PipelineCodec with_bd(std::make_unique<UniversalXorCodec>(3, true),
                          std::make_unique<BdEncodingCodec>());
    EXPECT_FALSE(with_bd.stateless());
    EXPECT_TRUE(makeUniversalDbi(1).stateless());
}

TEST(Pipeline, ResetPropagates)
{
    PipelineCodec with_bd(std::make_unique<UniversalXorCodec>(3, true),
                          std::make_unique<BdEncodingCodec>());
    Transaction tx = Transaction::fromWords64(
        {0x5555555555555555ull, 0x5555555555555555ull,
         0x5555555555555555ull, 0x5555555555555555ull});
    const Encoded first = with_bd.encode(tx);
    EXPECT_EQ(with_bd.decode(first), tx);
    with_bd.reset();
    // After reset the BD repositories are empty again, so the encoding
    // must match a fresh codec's output.
    PipelineCodec fresh(std::make_unique<UniversalXorCodec>(3, true),
                        std::make_unique<BdEncodingCodec>());
    const Encoded again = with_bd.encode(tx);
    const Encoded expected = fresh.encode(tx);
    EXPECT_EQ(again.payload, expected.payload);
    EXPECT_EQ(again.meta, expected.meta);
}

TEST(Pipeline, CompositionOrderBothRoundTrip)
{
    // Codec composition does not commute, but both orders must stay
    // bijections: XOR-then-DBI and DBI-then-XOR each round-trip on the
    // same stream.
    PipelineCodec xor_then_dbi(std::make_unique<BaseXorCodec>(4, true),
                               std::make_unique<DbiCodec>(4, 4));
    PipelineCodec dbi_then_xor(std::make_unique<DbiCodec>(4, 4),
                               std::make_unique<BaseXorCodec>(4, true));
    Rng rng(0x0d0e);
    for (int trial = 0; trial < 400; ++trial) {
        Transaction tx(32);
        for (std::size_t off = 0; off < 32; off += 8)
            tx.setWord64(off, rng.next64());
        ASSERT_EQ(xor_then_dbi.decode(xor_then_dbi.encode(tx)), tx);
        ASSERT_EQ(dbi_then_xor.decode(dbi_then_xor.encode(tx)), tx);
    }
}

TEST(Pipeline, CompositionOrderChangesWireActivity)
{
    // On an all-ones transaction, XOR first cancels everything except the
    // base element (DBI then barely fires), while DBI first inverts dense
    // groups before XOR sees them — the two orders must not produce the
    // same wire image. This is why the factory's paper spec fixes the
    // order to XOR-then-DBI.
    PipelineCodec xor_then_dbi(std::make_unique<UniversalXorCodec>(3, true),
                               std::make_unique<DbiCodec>(4, 4));
    PipelineCodec dbi_then_xor(std::make_unique<DbiCodec>(4, 4),
                               std::make_unique<UniversalXorCodec>(3, true));
    Transaction tx = Transaction::fromWords64(
        {0xffffffffffffffffull, 0xffffffffffffffffull,
         0xffffffffffffffffull, 0xffffffffffffffffull});

    const Encoded forward = xor_then_dbi.encode(tx);
    const Encoded reverse = dbi_then_xor.encode(tx);
    EXPECT_EQ(xor_then_dbi.decode(forward), tx);
    EXPECT_EQ(dbi_then_xor.decode(reverse), tx);

    // XOR first: every non-base element cancels, so only the base carries
    // ones and DBI has nothing left to invert.
    EXPECT_LT(forward.ones(), reverse.ones());
    EXPECT_NE(forward.payload, reverse.payload);
}

TEST(Pipeline, FactoryPinsThePaperCompositionOrder)
{
    // Lock the default order so a refactor cannot silently swap it: the
    // paper applies Universal Base+XOR with ZDR *before* DBI.
    EXPECT_EQ(makeUniversalDbi(4).name(), "universal3+zdr|dbi4");
    bool found = false;
    for (const std::string &spec : paperSchemeSpecs())
        found = found || spec == "universal3+zdr|dbi4";
    EXPECT_TRUE(found) << "paper spec table lost universal3+zdr|dbi4";
}

TEST(Pipeline, MetadataInterleavingRoundTrips)
{
    // DBI then BD: two metadata-emitting stages; the per-beat interleave
    // must split back correctly on decode.
    PipelineCodec pipeline(std::make_unique<DbiCodec>(1, 4),
                           std::make_unique<BdEncodingCodec>());
    EXPECT_EQ(pipeline.metaWiresPerBeat(), 8u);
    Rng rng(53);
    for (int trial = 0; trial < 200; ++trial) {
        Transaction tx(32);
        for (std::size_t off = 0; off < 32; off += 8)
            tx.setWord64(off, rng.next64());
        const Encoded enc = pipeline.encode(tx);
        ASSERT_EQ(enc.meta.size(), 8u * 8u);
        ASSERT_EQ(pipeline.decode(enc), tx);
    }
}

} // namespace
} // namespace bxt
