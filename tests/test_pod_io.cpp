/**
 * @file
 * Unit tests for the POD I/O electrical model against the constants the
 * paper derives in §V-A and Table I.
 */

#include <gtest/gtest.h>

#include "energy/pod_io.h"

namespace bxt {
namespace {

TEST(PodIo, Gddr5xStaticCurrentIs13_5mA)
{
    const PodIoParams io = PodIoParams::gddr5x();
    EXPECT_NEAR(io.currentPerOne(), 13.5e-3, 1e-6);
}

TEST(PodIo, Gddr5xEnergyPerOneIs1_82pJ)
{
    const PodIoParams io = PodIoParams::gddr5x();
    EXPECT_NEAR(io.energyPerOne() * 1e12, 1.82, 0.01);
}

TEST(PodIo, Gddr5xSwingIs0_54V)
{
    const PodIoParams io = PodIoParams::gddr5x();
    EXPECT_NEAR(io.swingVoltage(), 0.54, 1e-9);
}

TEST(PodIo, BitTimeMatchesDataRate)
{
    const PodIoParams io = PodIoParams::gddr5x();
    EXPECT_NEAR(io.bitTime(), 100e-12, 1e-15); // 10 Gbps -> 100 ps.
}

TEST(PodIo, ToggleEnergyFormula)
{
    PodIoParams io = PodIoParams::gddr5x();
    const double vsw = io.swingVoltage();
    EXPECT_NEAR(io.energyPerToggle(), 0.5 * io.cChannel * vsw * vsw,
                1e-18);
    // A one costs more than a toggle at the GDDR5X operating point.
    EXPECT_GT(io.energyPerOne(), io.energyPerToggle());
}

TEST(PodIo, Ddr4PresetIsSlowerAndLowerVoltage)
{
    const PodIoParams ddr4 = PodIoParams::ddr4();
    const PodIoParams gddr = PodIoParams::gddr5x();
    EXPECT_LT(ddr4.vdd, gddr.vdd);
    EXPECT_LT(ddr4.dataRateGbps, gddr.dataRateGbps);
    EXPECT_GT(ddr4.bitTime(), gddr.bitTime());
}

TEST(PodIo, Hbm2IsUnterminated)
{
    const PodIoParams hbm = PodIoParams::hbm2();
    EXPECT_FALSE(hbm.terminated());
    // No termination: a 1 costs no static energy, and the swing is the
    // full rail.
    EXPECT_DOUBLE_EQ(hbm.currentPerOne(), 0.0);
    EXPECT_DOUBLE_EQ(hbm.energyPerOne(), 0.0);
    EXPECT_DOUBLE_EQ(hbm.swingVoltage(), hbm.vdd);
    EXPECT_GT(hbm.energyPerToggle(), 0.0);
    EXPECT_TRUE(PodIoParams::gddr5x().terminated());
}

TEST(PodIo, OnePenaltyFractionRoughly37Percent)
{
    // The paper quotes a 37 % energy premium for a 1 vs a 0 on GDDR5X.
    // With per-bit fixed costs of ~4.6 pJ (clocking, RX, core share of a
    // transferred bit) the model lands at that ratio.
    const PodIoParams io = PodIoParams::gddr5x();
    const double fixed = 4.6e-12;
    EXPECT_NEAR(io.onePenaltyFraction(fixed), 0.37, 0.06);
}

} // namespace
} // namespace bxt
