/**
 * @file
 * Unit tests for the xoshiro256** generator: determinism, bounds, basic
 * distribution sanity, and stream independence.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/rng.h"

namespace bxt {
namespace {

TEST(Rng, SameSeedSameStream)
{
    Rng a(123);
    Rng b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next64(), b.next64());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1);
    Rng b(2);
    int equal = 0;
    for (int i = 0; i < 64; ++i)
        equal += (a.next64() == b.next64()) ? 1 : 0;
    EXPECT_LT(equal, 2);
}

TEST(Rng, ZeroSeedWellMixed)
{
    // splitmix64 seeding must avoid the all-zero xoshiro state.
    Rng rng(0);
    std::uint64_t ored = 0;
    for (int i = 0; i < 16; ++i)
        ored |= rng.next64();
    EXPECT_NE(ored, 0u);
}

TEST(Rng, BoundedStaysInRange)
{
    Rng rng(7);
    for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull}) {
        for (int i = 0; i < 200; ++i)
            EXPECT_LT(rng.nextBounded(bound), bound);
    }
}

TEST(Rng, BoundedCoversAllValues)
{
    Rng rng(11);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 500; ++i)
        seen.insert(rng.nextBounded(7));
    EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, DoubleInUnitInterval)
{
    Rng rng(5);
    double sum = 0.0;
    for (int i = 0; i < 10000; ++i) {
        const double d = rng.nextDouble();
        ASSERT_GE(d, 0.0);
        ASSERT_LT(d, 1.0);
        sum += d;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, BoolProbability)
{
    Rng rng(13);
    int hits = 0;
    for (int i = 0; i < 10000; ++i)
        hits += rng.nextBool(0.25) ? 1 : 0;
    EXPECT_NEAR(hits / 10000.0, 0.25, 0.02);
}

TEST(Rng, GaussianMoments)
{
    Rng rng(17);
    double sum = 0.0;
    double sum_sq = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        const double g = rng.nextGaussian();
        sum += g;
        sum_sq += g * g;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.03);
    EXPECT_NEAR(sum_sq / n, 1.0, 0.05);
}

TEST(Rng, SplitIsIndependent)
{
    Rng parent(42);
    Rng child = parent.split();
    // The child stream should not replicate the parent stream.
    int equal = 0;
    for (int i = 0; i < 64; ++i)
        equal += (parent.next64() == child.next64()) ? 1 : 0;
    EXPECT_LT(equal, 2);
}

TEST(Rng, BitBalance)
{
    Rng rng(23);
    std::size_t ones = 0;
    const int n = 2000;
    for (int i = 0; i < n; ++i)
        ones += static_cast<std::size_t>(
            __builtin_popcountll(rng.next64()));
    EXPECT_NEAR(static_cast<double>(ones) / (64.0 * n), 0.5, 0.01);
}

} // namespace
} // namespace bxt
