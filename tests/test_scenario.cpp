/**
 * @file
 * Tests for the multi-tenant traffic scenario engine: seed determinism,
 * Zipf sampling against the closed form, arrival-schedule and burst
 * invariants, preset round-trips, and the golden digest fixtures that
 * pin each preset's request stream.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "workloads/scenario.h"

namespace bxt::scenario {
namespace {

Config
presetOrDie(const std::string &name)
{
    Config config;
    std::string err;
    EXPECT_TRUE(preset(name, config, err)) << err;
    return config;
}

std::vector<Request>
expand(const Config &config, std::uint64_t seed)
{
    Engine engine(config, seed);
    std::vector<Request> out;
    Request request;
    while (engine.next(request))
        out.push_back(request);
    return out;
}

bool
sameRequest(const Request &a, const Request &b)
{
    return a.index == b.index && a.tenant == b.tenant && a.spec == b.spec &&
           a.txBytes == b.txBytes && a.busBits == b.busBits &&
           a.count == b.count && a.arrivalUs == b.arrivalUs &&
           a.burst == b.burst && a.payload == b.payload;
}

TEST(ZipfWeights, MatchesClosedForm)
{
    // alpha = 1, n = 4: H = 1 + 1/2 + 1/3 + 1/4 = 25/12.
    const std::vector<double> w = zipfWeights(4, 1.0);
    ASSERT_EQ(w.size(), 4u);
    const double h = 25.0 / 12.0;
    EXPECT_NEAR(w[0], 1.0 / h, 1e-12);
    EXPECT_NEAR(w[1], 0.5 / h, 1e-12);
    EXPECT_NEAR(w[2], (1.0 / 3.0) / h, 1e-12);
    EXPECT_NEAR(w[3], 0.25 / h, 1e-12);
}

TEST(ZipfWeights, AlphaZeroIsUniform)
{
    const std::vector<double> w = zipfWeights(8, 0.0);
    for (const double weight : w)
        EXPECT_NEAR(weight, 1.0 / 8.0, 1e-12);
}

TEST(Engine, SameSeedIsByteIdentical)
{
    Config config = presetOrDie("zipf-0.99");
    config.requests = 200;
    const std::vector<Request> a = expand(config, 42);
    const std::vector<Request> b = expand(config, 42);
    ASSERT_EQ(a.size(), 200u);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_TRUE(sameRequest(a[i], b[i])) << "request " << i;
        EXPECT_EQ(a[i].payload.size(),
                  static_cast<std::size_t>(a[i].count) * a[i].txBytes);
    }
}

TEST(Engine, DifferentSeedsDiffer)
{
    Config config = presetOrDie("zipf-0.99");
    config.requests = 64;
    EXPECT_NE(digest(config, 1, 64), digest(config, 2, 64));
}

TEST(Engine, ResetReplaysTheStream)
{
    Config config = presetOrDie("burst");
    config.requests = 64;
    Engine engine(config, 7);
    std::vector<Request> first;
    Request request;
    while (engine.next(request))
        first.push_back(request);
    EXPECT_EQ(engine.emitted(), 64u);

    engine.reset();
    EXPECT_EQ(engine.emitted(), 0u);
    std::size_t i = 0;
    while (engine.next(request)) {
        ASSERT_LT(i, first.size());
        EXPECT_TRUE(sameRequest(first[i], request)) << "request " << i;
        ++i;
    }
    EXPECT_EQ(i, first.size());
}

TEST(Engine, DigestIsPrefixStable)
{
    // The request-count field only bounds emission; it must not perturb
    // tenant assignment or the arrival stream, so a shorter run digests
    // identically to the prefix of a longer one.
    Config longer = presetOrDie("uniform");
    longer.requests = 96;
    Config shorter = longer;
    shorter.requests = 32;
    EXPECT_EQ(digest(longer, 9, 32), digest(shorter, 9, 32));
}

TEST(Engine, ZipfSamplingMatchesWeightsChiSquare)
{
    Config config = presetOrDie("zipf-0.99");
    config.requests = 4000;
    // Strip payload work out of the tally loop: 1-byte transactions.
    config.minTx = 1;
    config.maxTx = 1;
    config.sizeMix = {{8, 1.0}};

    Engine engine(config, 1234);
    std::vector<std::uint64_t> observed(config.tenants, 0);
    Request request;
    while (engine.next(request))
        ++observed[request.tenant];

    double chi2 = 0.0;
    for (std::uint32_t t = 0; t < config.tenants; ++t) {
        const double expected =
            static_cast<double>(config.requests) * engine.tenantWeight(t);
        ASSERT_GT(expected, 0.0);
        const double delta = static_cast<double>(observed[t]) - expected;
        chi2 += delta * delta / expected;
    }
    // 31 degrees of freedom; the p = 0.001 critical value is 61.1. The
    // stream is deterministic, so this cannot flake — it only fails if
    // the sampler stops following the closed-form weights.
    EXPECT_LT(chi2, 61.1);
}

TEST(Engine, ArrivalsAreNondecreasing)
{
    for (const std::string &name : presetNames()) {
        Config config = presetOrDie(name);
        config.requests = 500;
        const std::vector<Request> stream = expand(config, 5);
        for (std::size_t i = 1; i < stream.size(); ++i) {
            EXPECT_GE(stream[i].arrivalUs, stream[i - 1].arrivalUs)
                << name << " request " << i;
        }
    }
}

TEST(Engine, BurstEpisodesShortenGaps)
{
    Config config = presetOrDie("burst");
    config.requests = 4000;
    config.minTx = 1;
    config.maxTx = 1;
    const std::vector<Request> stream = expand(config, 77);

    double burst_gap = 0.0, normal_gap = 0.0;
    std::size_t burst_n = 0, normal_n = 0;
    for (std::size_t i = 1; i < stream.size(); ++i) {
        const double gap = stream[i].arrivalUs - stream[i - 1].arrivalUs;
        if (stream[i].burst) {
            burst_gap += gap;
            ++burst_n;
        } else {
            normal_gap += gap;
            ++normal_n;
        }
    }
    ASSERT_GT(burst_n, 100u);
    ASSERT_GT(normal_n, 100u);
    // Bursts run at 8x the base rate; the mean gap inside episodes must
    // be far below the steady-state gap (4x leaves statistical slack).
    EXPECT_LT(burst_gap / static_cast<double>(burst_n),
              normal_gap / static_cast<double>(normal_n) / 4.0);
}

TEST(Engine, BurstRunsAreWholeEpisodes)
{
    Config config = presetOrDie("burst");
    config.requests = 4000;
    config.minTx = 1;
    config.maxTx = 1;
    const std::vector<Request> stream = expand(config, 3);

    std::size_t run = 0;
    bool saw_burst = false;
    for (std::size_t i = 0; i < stream.size(); ++i) {
        if (stream[i].burst) {
            ++run;
            saw_burst = true;
        } else if (run > 0) {
            // Episodes are burstLen requests; back-to-back episodes can
            // chain, so a maximal run is a multiple of burstLen.
            EXPECT_EQ(run % config.burstLen, 0u) << "ending at " << i;
            run = 0;
        }
    }
    EXPECT_TRUE(saw_burst);
}

TEST(Engine, HotFloodRoutesToTenantZero)
{
    Config config = presetOrDie("hot-flood");
    config.requests = 2000;
    Engine engine(config, 11);
    EXPECT_EQ(engine.tenantSpec(0), "xor4+zdr");

    std::uint64_t hot = 0;
    Request request;
    while (engine.next(request)) {
        if (request.tenant == 0)
            ++hot;
        EXPECT_EQ(request.txBytes, 32u);
    }
    const double share =
        static_cast<double>(hot) / static_cast<double>(config.requests);
    // hotFraction 0.9 plus tenant 0's own Zipf head: share must clear
    // 0.85 without consuming everything (other tenants still appear).
    EXPECT_GT(share, 0.85);
    EXPECT_LT(share, 0.99);
}

TEST(Presets, RoundTripThroughTextForm)
{
    for (const std::string &name : presetNames()) {
        const Config config = presetOrDie(name);
        Config parsed;
        std::string err;
        ASSERT_TRUE(parse(format(config), parsed, err))
            << name << ": " << err;
        EXPECT_EQ(config, parsed) << name;
    }
}

TEST(Presets, UnknownNameFails)
{
    Config config;
    std::string err;
    EXPECT_FALSE(preset("no-such-preset", config, err));
    EXPECT_NE(err.find("no-such-preset"), std::string::npos);
}

TEST(Parse, RejectsUnknownKeyWithLineNumber)
{
    Config config;
    std::string err;
    EXPECT_FALSE(parse("tenants = 4\nbogus = 1\n", config, err));
    EXPECT_NE(err.find("line 2"), std::string::npos) << err;
    EXPECT_NE(err.find("bogus"), std::string::npos) << err;
}

TEST(Parse, RejectsDuplicateKeyWithLineNumber)
{
    Config config;
    std::string err;
    EXPECT_FALSE(
        parse("tenants = 4\nalpha = 0.5\ntenants = 8\n", config, err));
    EXPECT_NE(err.find("line 3"), std::string::npos) << err;
    EXPECT_NE(err.find("duplicate key 'tenants'"), std::string::npos)
        << err;
}

TEST(Parse, RejectsBadValues)
{
    Config config;
    std::string err;
    EXPECT_FALSE(parse("tenants = many\n", config, err));
    EXPECT_NE(err.find("line 1"), std::string::npos) << err;
    EXPECT_FALSE(parse("min_tx = 0\n", config, err));
    EXPECT_FALSE(parse("spec_mix = xor4+zdr\n", config, err));
    EXPECT_FALSE(parse("size_mix = 48:1\n", config, err));
}

TEST(Load, ResolvesPresetNameOrFile)
{
    Config from_name;
    std::string err;
    ASSERT_TRUE(load("burst", from_name, err)) << err;

    const std::filesystem::path path =
        std::filesystem::temp_directory_path() / "bxt_scenario_test.conf";
    {
        std::ofstream out(path);
        out << format(from_name);
    }
    Config from_file;
    EXPECT_TRUE(load(path.string(), from_file, err)) << err;
    EXPECT_EQ(from_name, from_file);
    std::filesystem::remove(path);

    Config missing;
    EXPECT_FALSE(load("definitely-not-a-preset-or-file", missing, err));
}

/** One `key value` fixture line parser for the golden scenario files. */
bool
readFixture(const std::string &path, Config &config, std::uint64_t &seed,
            std::size_t &requests, std::uint64_t &expected)
{
    std::ifstream in(path);
    if (!in)
        return false;
    std::string line;
    std::string name;
    while (std::getline(in, line)) {
        if (line.empty() || line[0] == '#')
            continue;
        std::istringstream fields(line);
        std::string key, value;
        if (!(fields >> key >> value))
            return false;
        if (key == "name")
            name = value;
        else if (key == "seed")
            seed = std::strtoull(value.c_str(), nullptr, 0);
        else if (key == "requests")
            requests = std::strtoull(value.c_str(), nullptr, 0);
        else if (key == "digest")
            expected = std::strtoull(value.c_str(), nullptr, 0);
        else
            return false;
    }
    std::string err;
    return preset(name, config, err);
}

TEST(Golden, PresetDigestsMatchFixtures)
{
    for (const std::string &name : presetNames()) {
        const std::string path =
            std::string(BXT_GOLDEN_DIR) + "/scenarios/" + name + ".txt";
        Config config;
        std::uint64_t seed = 0, expected = 0;
        std::size_t requests = 0;
        ASSERT_TRUE(readFixture(path, config, seed, requests, expected))
            << "unreadable fixture " << path
            << " (regenerate: gen_golden --scenarios tests/golden/scenarios)";
        ASSERT_GT(requests, 0u);
        const std::uint64_t actual = digest(config, seed, requests);
        EXPECT_EQ(actual, expected)
            << name << ": the " << requests
            << "-request stream changed; if intentional, regenerate with "
               "gen_golden --scenarios tests/golden/scenarios";
    }
}

} // namespace
} // namespace bxt::scenario
