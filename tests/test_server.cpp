/**
 * @file
 * bxtd server tests: frame-parser structural checks (every malformed
 * input maps to a typed error), socket-free Service dispatch, and
 * loopback end-to-end runs — a live server on an ephemeral TCP port and
 * on a Unix-domain socket, round-tripping the golden-vector corpus
 * bit-identically through every codec spec.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <map>

#include "client/client.h"
#include "common/bitops.h"
#include "common/checksum.h"
#include "common/json.h"
#include "core/codec_factory.h"
#include "server/server.h"
#include "server/service.h"
#include "server/wire.h"
#include "telemetry/metrics.h"
#include "telemetry/snapshot.h"
#include "telemetry/spanring.h"
#include "verify/golden.h"
#include "workloads/scenario.h"

namespace bxt {
namespace {

// ---------------------------------------------------------------------
// Frame parser

wire::Frame
pingFrame()
{
    wire::Frame frame;
    frame.opcode = wire::Opcode::Ping;
    return frame;
}

wire::Frame
encodeFrameWithSpec(const std::string &spec)
{
    wire::Frame frame;
    frame.opcode = wire::Opcode::Encode;
    frame.spec = spec;
    frame.body = {1, 2, 3, 4};
    return frame;
}

/**
 * Overwrite a length field in a serialized frame. Length-bound checks
 * run before the CRC check, so the stale CRC does not mask them.
 */
void
storeLen(std::vector<std::uint8_t> &bytes, std::size_t offset,
         std::size_t value)
{
    storeWord32(bytes.data() + offset, static_cast<std::uint32_t>(value));
}

/** Feed @p bytes and expect one typed error. */
wire::ErrorCode
parseExpectingError(const std::vector<std::uint8_t> &bytes)
{
    wire::FrameParser parser;
    parser.feed(bytes.data(), bytes.size());
    wire::Frame out;
    wire::WireError err;
    EXPECT_EQ(parser.next(out, err), wire::FrameParser::Status::Bad);
    EXPECT_TRUE(parser.failed());
    return err.code;
}

TEST(FrameParser, CleanFrameRoundTrips)
{
    const wire::Frame frame = encodeFrameWithSpec("universal3+zdr");
    const std::vector<std::uint8_t> bytes = wire::serializeFrame(frame);

    wire::FrameParser parser;
    parser.feed(bytes.data(), bytes.size());
    wire::Frame out;
    wire::WireError err;
    ASSERT_EQ(parser.next(out, err), wire::FrameParser::Status::Ready);
    EXPECT_EQ(out, frame);
    EXPECT_EQ(parser.buffered(), 0u);
    EXPECT_EQ(parser.next(out, err), wire::FrameParser::Status::NeedMore);
}

TEST(FrameParser, TruncatedFrameNeedsMore)
{
    const std::vector<std::uint8_t> bytes =
        wire::serializeFrame(encodeFrameWithSpec("xor4+zdr"));
    for (const std::size_t keep :
         {std::size_t{0}, std::size_t{5}, std::size_t{15},
          bytes.size() - 1}) {
        wire::FrameParser parser;
        parser.feed(bytes.data(), keep);
        wire::Frame out;
        wire::WireError err;
        EXPECT_EQ(parser.next(out, err),
                  wire::FrameParser::Status::NeedMore)
            << "prefix of " << keep << " bytes";
        EXPECT_FALSE(parser.failed());
    }
}

TEST(FrameParser, ByteAtATimeDeliveryStillParses)
{
    const wire::Frame frame = encodeFrameWithSpec("dbi4");
    const std::vector<std::uint8_t> bytes = wire::serializeFrame(frame);
    wire::FrameParser parser;
    wire::Frame out;
    wire::WireError err;
    for (std::size_t i = 0; i + 1 < bytes.size(); ++i) {
        parser.feed(&bytes[i], 1);
        ASSERT_EQ(parser.next(out, err),
                  wire::FrameParser::Status::NeedMore);
    }
    parser.feed(&bytes.back(), 1);
    ASSERT_EQ(parser.next(out, err), wire::FrameParser::Status::Ready);
    EXPECT_EQ(out, frame);
}

TEST(FrameParser, BadMagicIsTyped)
{
    std::vector<std::uint8_t> bytes =
        wire::serializeFrame(pingFrame());
    bytes[0] ^= 0xff;
    EXPECT_EQ(parseExpectingError(bytes), wire::ErrorCode::BadMagic);
}

TEST(FrameParser, BadVersionIsTyped)
{
    // Version 2 is the traced-frame variant, so the first undefined
    // version is wireVersionTraced + 1.
    std::vector<std::uint8_t> bytes = wire::serializeFrame(pingFrame());
    bytes[4] = wire::wireVersionTraced + 1;
    EXPECT_EQ(parseExpectingError(bytes), wire::ErrorCode::BadVersion);
}

TEST(FrameParser, TraceContextRoundTrips)
{
    wire::Frame frame = encodeFrameWithSpec("xor4+zdr");
    frame.streamId = 7;
    frame.traceId = 0x1122334455667788ull;
    frame.spanId = 0x99aabbccddeeff00ull;
    frame.traceSampled = true;
    ASSERT_TRUE(frame.traced());

    // Traced frames serialize as version 2 with the 20-byte trace block
    // between the fixed header and the spec.
    const std::vector<std::uint8_t> bytes = wire::serializeFrame(frame);
    EXPECT_EQ(bytes[4], wire::wireVersionTraced);
    EXPECT_EQ(bytes[16], 0x88); // traceId low byte, little-endian.
    EXPECT_EQ(bytes[24], 0x00); // spanId low byte.
    EXPECT_EQ(bytes[32], 0x01); // flags: sampled bit.
    const std::vector<std::uint8_t> untraced =
        wire::serializeFrame(encodeFrameWithSpec("xor4+zdr"));
    EXPECT_EQ(bytes.size(), untraced.size() + wire::traceBlockBytes);

    wire::FrameParser parser;
    parser.feed(bytes.data(), bytes.size());
    wire::Frame out;
    wire::WireError err;
    ASSERT_EQ(parser.next(out, err), wire::FrameParser::Status::Ready);
    EXPECT_EQ(out, frame);
    EXPECT_EQ(out.traceId, frame.traceId);
    EXPECT_EQ(out.spanId, frame.spanId);
    EXPECT_TRUE(out.traceSampled);

    // An unsampled trace context round-trips with the flag clear.
    frame.traceSampled = false;
    const std::vector<std::uint8_t> unsampled =
        wire::serializeFrame(frame);
    parser.feed(unsampled.data(), unsampled.size());
    ASSERT_EQ(parser.next(out, err), wire::FrameParser::Status::Ready);
    EXPECT_EQ(out, frame);
    EXPECT_FALSE(out.traceSampled);
}

TEST(FrameParser, UntracedFramesStayVersionOne)
{
    // Pre-trace clients must see byte-identical framing: an untraced
    // frame serializes as version 1 with no trace block.
    const std::vector<std::uint8_t> bytes =
        wire::serializeFrame(pingFrame());
    EXPECT_EQ(bytes[4], wire::wireVersion);
    EXPECT_EQ(bytes.size(),
              wire::headerBytes + sizeof(std::uint32_t)); // header + CRC
}

TEST(FrameParser, ReservedTraceFlagsAreMalformed)
{
    wire::Frame frame = pingFrame();
    frame.traceId = 42;
    frame.traceSampled = true;
    std::vector<std::uint8_t> bytes = wire::serializeFrame(frame);
    bytes[33] = 0x01; // Reserved flag bit 8.
    // Re-seal the CRC so the flags check (not BadCrc) fires.
    const std::uint32_t crc =
        crc32({bytes.data(), bytes.size() - sizeof(std::uint32_t)});
    storeWord32(bytes.data() + bytes.size() - sizeof(std::uint32_t), crc);
    EXPECT_EQ(parseExpectingError(bytes), wire::ErrorCode::Malformed);
}

TEST(FrameParser, ZeroTraceIdParsesAsUntraced)
{
    // traceId 0 means "no trace": the parser canonicalizes such a v2
    // frame so it re-serializes byte-identically as v1 (round-trip
    // idempotence for the fuzzer and for proxies).
    wire::Frame frame = pingFrame();
    frame.traceId = 1; // Force a v2 serialization...
    frame.traceSampled = true;
    std::vector<std::uint8_t> bytes = wire::serializeFrame(frame);
    for (std::size_t i = 0; i < 8; ++i)
        bytes[16 + i] = 0; // ...then zero the traceId on the wire.
    const std::uint32_t crc =
        crc32({bytes.data(), bytes.size() - sizeof(std::uint32_t)});
    storeWord32(bytes.data() + bytes.size() - sizeof(std::uint32_t), crc);

    wire::FrameParser parser;
    parser.feed(bytes.data(), bytes.size());
    wire::Frame out;
    wire::WireError err;
    ASSERT_EQ(parser.next(out, err), wire::FrameParser::Status::Ready);
    EXPECT_FALSE(out.traced());
    EXPECT_EQ(out.spanId, 0u);
    EXPECT_FALSE(out.traceSampled);
    EXPECT_EQ(wire::serializeFrame(out),
              wire::serializeFrame(pingFrame()));
}

TEST(FrameParser, UnknownOpcodeIsTyped)
{
    std::vector<std::uint8_t> bytes = wire::serializeFrame(pingFrame());
    bytes[5] = 0x42; // Not a defined opcode.
    EXPECT_EQ(parseExpectingError(bytes), wire::ErrorCode::UnknownOpcode);
}

TEST(FrameParser, StreamIdRoundTrips)
{
    // The formerly-reserved header bytes now carry the stream tag; a
    // tagged frame must round-trip it and an untagged frame stays 0.
    wire::Frame frame = encodeFrameWithSpec("xor4+zdr");
    frame.streamId = 0xbeef;
    const std::vector<std::uint8_t> bytes = wire::serializeFrame(frame);
    EXPECT_EQ(bytes[6], 0xef);
    EXPECT_EQ(bytes[7], 0xbe);

    wire::FrameParser parser;
    parser.feed(bytes.data(), bytes.size());
    wire::Frame out;
    wire::WireError err;
    ASSERT_EQ(parser.next(out, err), wire::FrameParser::Status::Ready);
    EXPECT_EQ(out.streamId, 0xbeef);
    EXPECT_EQ(out, frame);

    const std::vector<std::uint8_t> untagged =
        wire::serializeFrame(pingFrame());
    parser.feed(untagged.data(), untagged.size());
    ASSERT_EQ(parser.next(out, err), wire::FrameParser::Status::Ready);
    EXPECT_EQ(out.streamId, 0u);
}

TEST(FrameParser, OversizedSpecIsTyped)
{
    std::vector<std::uint8_t> bytes = wire::serializeFrame(pingFrame());
    storeLen(bytes, 8, wire::maxSpecLen + 1);
    EXPECT_EQ(parseExpectingError(bytes), wire::ErrorCode::FrameTooLarge);
}

TEST(FrameParser, OversizedBodyIsTyped)
{
    std::vector<std::uint8_t> bytes = wire::serializeFrame(pingFrame());
    storeLen(bytes, 12, wire::maxBodyLen + 1);
    EXPECT_EQ(parseExpectingError(bytes), wire::ErrorCode::FrameTooLarge);
}

TEST(FrameParser, BadCrcIsTypedAndSticky)
{
    std::vector<std::uint8_t> bytes =
        wire::serializeFrame(encodeFrameWithSpec("baseline"));
    bytes[bytes.size() - 1] ^= 0x01;

    wire::FrameParser parser;
    parser.feed(bytes.data(), bytes.size());
    wire::Frame out;
    wire::WireError err;
    ASSERT_EQ(parser.next(out, err), wire::FrameParser::Status::Bad);
    EXPECT_EQ(err.code, wire::ErrorCode::BadCrc);

    // Sticky: feeding a clean frame afterwards must not recover.
    const std::vector<std::uint8_t> clean =
        wire::serializeFrame(pingFrame());
    parser.feed(clean.data(), clean.size());
    EXPECT_EQ(parser.next(out, err), wire::FrameParser::Status::Bad);
    EXPECT_EQ(err.code, wire::ErrorCode::BadCrc);
}

TEST(FrameParser, SelfCheckingFuzzPasses)
{
    const wire::FrameFuzzReport report =
        wire::fuzzFrameParser(/*seed=*/7, /*iterations=*/3000);
    EXPECT_GT(report.framesParsed, 0u);
    EXPECT_GT(report.errorsTyped, 0u);
    for (const std::string &failure : report.failures)
        ADD_FAILURE() << failure;
}

TEST(ErrorFrames, RoundTripCodeAndMessage)
{
    const wire::Frame frame =
        wire::makeErrorFrame(wire::ErrorCode::Busy, "try later");
    wire::ErrorCode code = wire::ErrorCode::None;
    std::string message;
    ASSERT_TRUE(wire::parseErrorFrame(frame, code, message));
    EXPECT_EQ(code, wire::ErrorCode::Busy);
    EXPECT_EQ(message, "try later");
    EXPECT_EQ(wire::errorCodeName(code), "busy");
}

// ---------------------------------------------------------------------
// Service dispatch (socket-free)

wire::ErrorCode
errorCodeOf(const wire::Frame &frame)
{
    wire::ErrorCode code = wire::ErrorCode::None;
    std::string message;
    EXPECT_TRUE(wire::parseErrorFrame(frame, code, message))
        << "expected an Error frame";
    return code;
}

wire::Frame
makeEncodeRequest(const std::string &spec, std::uint32_t tx_bytes,
                  std::uint32_t bus_bits,
                  const std::vector<std::uint8_t> &raw)
{
    wire::Frame request;
    request.opcode = wire::Opcode::Encode;
    request.spec = spec;
    wire::BodyWriter body;
    body.u32(tx_bytes);
    body.u32(bus_bits);
    body.u64(raw.size() / tx_bytes);
    body.bytes(raw.data(), raw.size());
    request.body = body.take();
    return request;
}

TEST(Service, PingEchoes)
{
    server::Service service;
    const wire::Frame reply = service.handle(pingFrame());
    EXPECT_EQ(reply.opcode, wire::Opcode::Ping);
    EXPECT_TRUE(reply.body.empty());
}

TEST(Service, ErrorOpcodeAsRequestIsMalformed)
{
    server::Service service;
    const wire::Frame reply = service.handle(
        wire::makeErrorFrame(wire::ErrorCode::Internal, "not a request"));
    EXPECT_EQ(errorCodeOf(reply), wire::ErrorCode::Malformed);
}

TEST(Service, BadSpecIsTyped)
{
    server::Service service;
    const std::vector<std::uint8_t> raw(32, 0);
    const wire::Frame reply =
        service.handle(makeEncodeRequest("no-such-codec", 32, 32, raw));
    EXPECT_EQ(errorCodeOf(reply), wire::ErrorCode::BadSpec);
}

TEST(Service, BadGeometryIsMalformed)
{
    server::Service service;
    const std::vector<std::uint8_t> raw(24, 0);
    // 24 is not a power of two.
    wire::Frame reply =
        service.handle(makeEncodeRequest("baseline", 24, 32, raw));
    EXPECT_EQ(errorCodeOf(reply), wire::ErrorCode::Malformed);
    // 48-bit bus does not exist.
    reply = service.handle(
        makeEncodeRequest("baseline", 32, 48,
                          std::vector<std::uint8_t>(32, 0)));
    EXPECT_EQ(errorCodeOf(reply), wire::ErrorCode::Malformed);
}

TEST(Service, TruncatedEncodeBodyIsMalformed)
{
    server::Service service;
    wire::Frame request =
        makeEncodeRequest("baseline", 32, 32,
                          std::vector<std::uint8_t>(64, 0));
    request.body.pop_back(); // Body no longer matches the count field.
    EXPECT_EQ(errorCodeOf(service.handle(request)),
              wire::ErrorCode::Malformed);
}

TEST(Service, OversizedCountIsMalformed)
{
    server::Service service;
    wire::Frame request;
    request.opcode = wire::Opcode::Encode;
    request.spec = "baseline";
    wire::BodyWriter body;
    body.u32(32);
    body.u32(32);
    body.u64(wire::maxTxPerRequest + 1);
    request.body = body.take();
    EXPECT_EQ(errorCodeOf(service.handle(request)),
              wire::ErrorCode::Malformed);
}

TEST(Service, DecodeGeometryMismatchIsMalformed)
{
    server::Service service;
    // dbi1 on a 32-bit bus drives 4 metadata wires per beat; claim 1.
    wire::Frame request;
    request.opcode = wire::Opcode::Decode;
    request.spec = "dbi1";
    wire::BodyWriter body;
    body.u32(32);
    body.u32(32);
    body.u32(1); // Wrong metaWiresPerBeat.
    body.u32(1);
    body.u64(1);
    const std::vector<std::uint8_t> payload(33, 0);
    body.bytes(payload.data(), payload.size());
    request.body = body.take();
    EXPECT_EQ(errorCodeOf(service.handle(request)),
              wire::ErrorCode::Malformed);
}

TEST(Service, EncodeMatchesDirectCodecAndCachesIt)
{
    server::Service service;
    const std::string spec = "universal3+zdr";
    std::vector<std::uint8_t> raw(3 * 32);
    for (std::size_t i = 0; i < raw.size(); ++i)
        raw[i] = static_cast<std::uint8_t>(i * 37 + 11);

    const wire::Frame reply =
        service.handle(makeEncodeRequest(spec, 32, 32, raw));
    ASSERT_EQ(reply.opcode, wire::Opcode::Encode);
    EXPECT_EQ(service.cachedCodecs(), 1u);

    wire::BodyReader reader(reply.body);
    std::uint32_t tx_bytes = 0, bus_bits = 0, meta_wires = 0,
                  meta_bytes = 0;
    std::uint64_t count = 0, in_ones = 0, payload_ones = 0, meta_ones = 0;
    ASSERT_TRUE(reader.u32(tx_bytes));
    ASSERT_TRUE(reader.u32(bus_bits));
    ASSERT_TRUE(reader.u32(meta_wires));
    ASSERT_TRUE(reader.u32(meta_bytes));
    ASSERT_TRUE(reader.u64(count));
    ASSERT_TRUE(reader.u64(in_ones));
    ASSERT_TRUE(reader.u64(payload_ones));
    ASSERT_TRUE(reader.u64(meta_ones));
    ASSERT_EQ(count, 3u);
    ASSERT_EQ(reader.remaining(), count * (tx_bytes + meta_bytes));

    CodecPtr codec = makeCodec(spec, 4);
    std::uint64_t want_in = 0, want_payload = 0;
    for (std::size_t i = 0; i < 3; ++i) {
        const Transaction tx(
            std::span<const std::uint8_t>(raw.data() + i * 32, 32));
        const Encoded enc = codec->encode(tx);
        want_in += tx.ones();
        want_payload += enc.payload.ones();
        std::vector<std::uint8_t> got(32);
        ASSERT_TRUE(reader.bytes(got.data(), got.size()));
        EXPECT_EQ(std::vector<std::uint8_t>(enc.payload.bytes().begin(),
                                            enc.payload.bytes().end()),
                  got)
            << "payload " << i << " differs from direct codec";
    }
    EXPECT_EQ(in_ones, want_in);
    EXPECT_EQ(payload_ones, want_payload);
    EXPECT_EQ(meta_ones, 0u);

    // Same spec again: the codec cache must not grow.
    service.handle(makeEncodeRequest(spec, 32, 32, raw));
    EXPECT_EQ(service.cachedCodecs(), 1u);
}

TEST(Service, StatsReturnsSnapshotJson)
{
    server::Service service;
    wire::Frame request;
    request.opcode = wire::Opcode::Stats;
    const wire::Frame reply = service.handle(request);
    ASSERT_EQ(reply.opcode, wire::Opcode::Stats);
    const std::string json(reply.body.begin(), reply.body.end());
    EXPECT_NE(json.find("\"schema\""), std::string::npos);
}

TEST(Service, TraceContextIsEchoedOnReplies)
{
    server::Service service;
    wire::Frame request = pingFrame();
    request.streamId = 7;
    request.traceId = 0x1234;
    request.spanId = 0x5678;
    request.traceSampled = true;
    const wire::Frame reply = service.handle(request);
    EXPECT_EQ(reply.opcode, wire::Opcode::Ping);
    EXPECT_EQ(reply.streamId, 7u);
    EXPECT_EQ(reply.traceId, 0x1234u);
    EXPECT_EQ(reply.spanId, 0x5678u);
    EXPECT_TRUE(reply.traceSampled);

    // Error replies carry the context too, so a traced client can stitch
    // failures onto the same trace.
    wire::Frame bad = makeEncodeRequest("no-such-codec", 32, 32,
                                        std::vector<std::uint8_t>(32, 0));
    bad.traceId = 0x1234;
    bad.spanId = 0x9999;
    bad.traceSampled = true;
    const wire::Frame error = service.handle(bad);
    EXPECT_EQ(errorCodeOf(error), wire::ErrorCode::BadSpec);
    EXPECT_EQ(error.traceId, 0x1234u);
    EXPECT_EQ(error.spanId, 0x9999u);
    EXPECT_TRUE(error.traceSampled);
}

TEST(Service, SnapshotReturnsUptimeAndMetrics)
{
    server::Service service;
    wire::Frame request;
    request.opcode = wire::Opcode::Snapshot;
    const wire::Frame reply = service.handle(request);
    ASSERT_EQ(reply.opcode, wire::Opcode::Snapshot);

    const std::string json(reply.body.begin(), reply.body.end());
    JsonValue doc;
    std::string err;
    ASSERT_TRUE(parseJson(json, doc, &err)) << err;
    const JsonValue *uptime = doc.find("uptime_us");
    ASSERT_NE(uptime, nullptr);
    EXPECT_GT(uptime->number, 0.0);
    const JsonValue *metrics = doc.find("metrics");
    ASSERT_NE(metrics, nullptr);
    ASSERT_TRUE(metrics->isObject());
    const JsonValue *schema = metrics->find("schema");
    ASSERT_NE(schema, nullptr);
    EXPECT_EQ(schema->number, telemetry::snapshotSchema);
}

TEST(Service, RequestTxCountReadsBodyHeaders)
{
    const std::vector<std::uint8_t> raw(3 * 32, 0);
    EXPECT_EQ(server::requestTxCount(
                  makeEncodeRequest("baseline", 32, 32, raw)),
              3u);
    EXPECT_EQ(server::requestTxCount(pingFrame()), 0u);

    // An absurd count field is clamped (the span field is advisory; the
    // real bounds check rejects the request later).
    wire::Frame absurd;
    absurd.opcode = wire::Opcode::Encode;
    absurd.spec = "baseline";
    wire::BodyWriter body;
    body.u32(32);
    body.u32(32);
    body.u64(~std::uint64_t{0});
    absurd.body = body.take();
    EXPECT_EQ(server::requestTxCount(absurd), wire::maxTxPerRequest);
}

TEST(Service, ValidateGeometryAcceptsAndRejects)
{
    EXPECT_TRUE(server::validateGeometry(32, 32).empty());
    EXPECT_TRUE(server::validateGeometry(64, 64).empty());
    EXPECT_TRUE(server::validateGeometry(8, 32).empty());
    EXPECT_FALSE(server::validateGeometry(24, 32).empty());
    EXPECT_FALSE(server::validateGeometry(128, 32).empty());
    EXPECT_FALSE(server::validateGeometry(32, 48).empty());
    EXPECT_FALSE(server::validateGeometry(4, 64).empty());
}

// ---------------------------------------------------------------------
// Loopback end-to-end

/** A live server on a background thread, torn down on destruction. */
class LiveServer
{
  public:
    explicit LiveServer(server::ServerOptions options)
        : server_(std::move(options))
    {
        std::string err;
        if (!server_.start(err)) {
            ADD_FAILURE() << "server start failed: " << err;
            return;
        }
        thread_ = std::thread([this] { server_.serve(); });
        started_ = true;
    }

    ~LiveServer() { stop(); }

    void stop()
    {
        if (started_) {
            server_.requestStop();
            thread_.join();
            started_ = false;
        }
    }

    bool started() const { return started_; }
    int tcpPort() const { return server_.tcpPort(); }

  private:
    server::Server server_;
    std::thread thread_;
    bool started_ = false;
};

server::ServerOptions
ephemeralTcpOptions()
{
    server::ServerOptions options;
    options.tcpPort = 0; // Ephemeral.
    options.threads = 2;
    return options;
}

std::string
uniqueSocketPath(const char *tag)
{
    return std::filesystem::temp_directory_path() /
           ("bxt_test_" + std::string(tag) + "_" +
            std::to_string(::getpid()) + ".sock");
}

/** Golden file headers: (spec, wires, seed, count) per corpus file. */
struct GoldenHeader
{
    std::string spec;
    unsigned wires = 0;
    std::uint64_t seed = 0;
    std::size_t count = 0;
};

std::vector<GoldenHeader>
loadGoldenHeaders()
{
    std::vector<GoldenHeader> headers;
    for (const auto &entry :
         std::filesystem::directory_iterator(BXT_GOLDEN_DIR)) {
        if (!entry.is_regular_file() ||
            entry.path().extension() != ".txt" ||
            entry.path().filename() == "endpoints.txt") {
            continue;
        }
        std::ifstream in(entry.path());
        GoldenHeader header;
        std::string key;
        while (in >> key) {
            if (key == "#") {
                std::string rest;
                std::getline(in, rest);
            } else if (key == "spec") {
                in >> header.spec;
            } else if (key == "wires") {
                in >> header.wires;
            } else if (key == "seed") {
                std::string value;
                in >> value;
                header.seed = std::stoull(value, nullptr, 0);
            } else if (key == "count") {
                in >> header.count;
                break; // Header complete; vectors follow.
            } else {
                std::string rest;
                std::getline(in, rest);
            }
        }
        if (!header.spec.empty() && header.wires != 0 && header.count > 0)
            headers.push_back(std::move(header));
    }
    return headers;
}

/** Unpack LSB-first packed metadata back to 0/1 values. */
std::vector<std::uint8_t>
unpackMetaBits(const std::uint8_t *packed, std::size_t bit_count)
{
    std::vector<std::uint8_t> bits(bit_count);
    for (std::size_t j = 0; j < bit_count; ++j)
        bits[j] = (packed[j / 8] >> (j % 8)) & 1u;
    return bits;
}

/**
 * Round-trip every golden-corpus spec through a live client connection:
 * encoded payload and metadata must match generateGolden bit-for-bit,
 * and decode must recover the inputs exactly.
 */
void
roundtripGoldenCorpus(client::Client &client)
{
    const std::vector<GoldenHeader> headers = loadGoldenHeaders();
    ASSERT_GE(headers.size(), 17u) << "golden corpus went missing";

    for (const GoldenHeader &header : headers) {
        SCOPED_TRACE(header.spec + " w" + std::to_string(header.wires));
        const verify::GoldenFile golden = verify::generateGolden(
            header.spec, header.wires, header.seed, header.count);
        ASSERT_EQ(golden.vectors.size(), header.count);

        const std::uint32_t tx_bytes = header.wires; // By construction.
        std::vector<std::uint8_t> raw;
        raw.reserve(header.count * tx_bytes);
        for (const verify::GoldenVector &vec : golden.vectors) {
            const auto bytes = vec.input.bytes();
            ASSERT_EQ(bytes.size(), tx_bytes);
            raw.insert(raw.end(), bytes.begin(), bytes.end());
        }

        std::string err;
        client::EncodeResult enc;
        ASSERT_TRUE(client.encode(header.spec, tx_bytes, header.wires,
                                  raw, enc, err))
            << err;
        ASSERT_EQ(enc.count, header.count);
        ASSERT_EQ(enc.payloads.size(), raw.size());

        for (std::size_t i = 0; i < header.count; ++i) {
            const verify::GoldenVector &vec = golden.vectors[i];
            const auto want = vec.payload.bytes();
            ASSERT_EQ(std::memcmp(want.data(),
                                  enc.payloads.data() + i * tx_bytes,
                                  tx_bytes),
                      0)
                << "payload " << i << " differs from golden vector";
            const std::vector<std::uint8_t> got_meta = unpackMetaBits(
                enc.meta.data() + i * enc.metaBytesPerTx, vec.meta.size());
            ASSERT_EQ(got_meta, vec.meta)
                << "metadata " << i << " differs from golden vector";
        }

        client::DecodeResult dec;
        ASSERT_TRUE(client.decode(header.spec, enc, dec, err)) << err;
        ASSERT_EQ(dec.raw, raw)
            << "decode did not recover the original transactions";
    }
}

TEST(Loopback, GoldenCorpusRoundTripsOverTcp)
{
    LiveServer live(ephemeralTcpOptions());
    ASSERT_TRUE(live.started());

    std::string err;
    client::Client client =
        client::Client::connectTcp("127.0.0.1", live.tcpPort(), err);
    ASSERT_TRUE(client.connected()) << err;
    ASSERT_TRUE(client.ping(err)) << err;
    roundtripGoldenCorpus(client);
}

TEST(Loopback, GoldenCorpusRoundTripsOverUnixSocket)
{
    const std::string path = uniqueSocketPath("unix");
    server::ServerOptions options;
    options.unixPath = path;
    options.threads = 2;
    LiveServer live(options);
    ASSERT_TRUE(live.started());

    std::string err;
    client::Client client = client::Client::connectUnix(path, err);
    ASSERT_TRUE(client.connected()) << err;
    roundtripGoldenCorpus(client);
    live.stop();
    EXPECT_FALSE(std::filesystem::exists(path))
        << "server left its socket file behind";
}

TEST(Loopback, ServerErrorsAreTypedNotFatal)
{
    LiveServer live(ephemeralTcpOptions());
    ASSERT_TRUE(live.started());

    std::string err;
    client::Client client =
        client::Client::connectTcp("127.0.0.1", live.tcpPort(), err);
    ASSERT_TRUE(client.connected()) << err;

    // Bad spec is a typed failure on a healthy connection…
    client::EncodeResult enc;
    const std::vector<std::uint8_t> raw(32, 0xff);
    EXPECT_FALSE(client.encode("bogus-spec", 32, 32, raw, enc, err));
    EXPECT_EQ(client.lastErrorCode(), wire::ErrorCode::BadSpec);

    // …and the connection still works afterwards.
    EXPECT_TRUE(client.ping(err)) << err;
    EXPECT_TRUE(client.encode("baseline", 32, 32, raw, enc, err)) << err;
    EXPECT_EQ(enc.inputOnes, 256u);
}

TEST(Loopback, StatsOpcodeServesLiveTelemetry)
{
    telemetry::setMetricsEnabled(true);
    LiveServer live(ephemeralTcpOptions());
    ASSERT_TRUE(live.started());

    std::string err;
    client::Client client =
        client::Client::connectTcp("127.0.0.1", live.tcpPort(), err);
    ASSERT_TRUE(client.connected()) << err;

    client::EncodeResult enc;
    const std::vector<std::uint8_t> raw(64, 0x0f);
    ASSERT_TRUE(client.encode("xor4+zdr", 32, 32, raw, enc, err)) << err;

    std::string json;
    ASSERT_TRUE(client.stats(json, err)) << err;
    EXPECT_NE(json.find("bxt.server.requests"), std::string::npos);
    EXPECT_NE(json.find("bxt.server.xor4-zdr.ones_in"), std::string::npos);
    telemetry::setMetricsEnabled(false);
}

TEST(Loopback, SnapshotOpcodeServesLiveTelemetryDocument)
{
    telemetry::setMetricsEnabled(true);
    LiveServer live(ephemeralTcpOptions());
    ASSERT_TRUE(live.started());

    std::string err;
    client::Client client =
        client::Client::connectTcp("127.0.0.1", live.tcpPort(), err);
    ASSERT_TRUE(client.connected()) << err;

    client::EncodeResult enc;
    const std::vector<std::uint8_t> raw(64, 0x0f);
    ASSERT_TRUE(client.encode("baseline", 32, 32, raw, enc, err)) << err;

    std::string json;
    ASSERT_TRUE(client.snapshot(json, err)) << err;
    JsonValue doc;
    ASSERT_TRUE(parseJson(json, doc, &err)) << err;
    ASSERT_NE(doc.find("uptime_us"), nullptr);
    const JsonValue *metrics = doc.find("metrics");
    ASSERT_NE(metrics, nullptr);
    ASSERT_TRUE(metrics->isObject());
    const JsonValue *counters = metrics->find("counters");
    ASSERT_NE(counters, nullptr);
    ASSERT_NE(counters->find("bxt.server.requests"), nullptr);
    telemetry::setMetricsEnabled(false);
}

TEST(Loopback, TracedRequestSpansTelescopeExactly)
{
    telemetry::resetForTest();
    telemetry::setMetricsEnabled(true);
    telemetry::clearServerSpans();
    LiveServer live(ephemeralTcpOptions());
    ASSERT_TRUE(live.started());

    std::string err;
    client::Client client =
        client::Client::connectTcp("127.0.0.1", live.tcpPort(), err);
    ASSERT_TRUE(client.connected()) << err;

    // An untraced request records no spans…
    client::EncodeResult enc;
    const std::vector<std::uint8_t> raw(4 * 32, 0xa5);
    ASSERT_TRUE(client.encode("xor4+zdr", 32, 32, raw, enc, err)) << err;
    EXPECT_TRUE(telemetry::collectServerSpans().empty());

    // …a traced one records all five lifecycle phases. The server stamps
    // the spans just after the reply write, so poll briefly: the client
    // can hold the response before the worker reaches the record loop.
    const std::uint64_t trace_id = 0x0102030405060708ull;
    client.setTrace(trace_id, /*span_id=*/77, /*sampled=*/true);
    ASSERT_TRUE(client.encode("xor4+zdr", 32, 32, raw, enc, err)) << err;
    client.clearTrace();

    std::map<telemetry::ServerPhase, telemetry::ServerSpan> by_phase;
    for (int attempt = 0; attempt < 500 && by_phase.size() < 5;
         ++attempt) {
        for (const telemetry::ServerSpan &span :
             telemetry::collectServerSpans()) {
            if (span.traceId != trace_id)
                continue;
            EXPECT_EQ(by_phase.count(span.phase), 0u)
                << "duplicate phase "
                << telemetry::serverPhaseName(span.phase);
            by_phase[span.phase] = span;
        }
        if (by_phase.size() < 5)
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    ASSERT_EQ(by_phase.size(), 5u)
        << "expected request/parse/queue_wait/codec/reply spans";

    const telemetry::ServerSpan &request =
        by_phase.at(telemetry::ServerPhase::Request);
    EXPECT_EQ(request.spanId, 77u);
    EXPECT_EQ(request.opcode,
              static_cast<std::uint8_t>(wire::Opcode::Encode));
    EXPECT_EQ(request.txCount, 4u);

    // The four phase spans nest inside the request span and their
    // durations telescope to it exactly — same clock reads on both sides
    // of every boundary, so the identity holds with zero tolerance.
    std::uint64_t phase_sum = 0;
    for (const auto &[phase, span] : by_phase) {
        if (phase == telemetry::ServerPhase::Request)
            continue;
        EXPECT_GE(span.startUs, request.startUs);
        EXPECT_LE(span.startUs + span.durUs,
                  request.startUs + request.durUs);
        phase_sum += span.durUs;
    }
    EXPECT_EQ(phase_sum, request.durUs);
    EXPECT_GE(telemetry::serverSpansRecorded(), 5u);
    EXPECT_EQ(telemetry::serverSpansDropped(), 0u);

    // A second traced request feeds the merged Chrome-trace export.
    // Wait for its five spans to be pushed (pushes are counted at
    // record time, independent of collection).
    client.setTrace(trace_id + 1, /*span_id=*/78, /*sampled=*/true);
    ASSERT_TRUE(client.encode("xor4+zdr", 32, 32, raw, enc, err)) << err;
    client.clearTrace();
    for (int attempt = 0;
         attempt < 500 && telemetry::serverSpansRecorded() < 10;
         ++attempt)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    const std::string path =
        (std::filesystem::temp_directory_path() /
         ("bxt_spans_" + std::to_string(::getpid()) + ".json"))
            .string();
    ASSERT_TRUE(telemetry::writeServerSpanTrace(path));
    std::ifstream in(path);
    std::stringstream buffer;
    buffer << in.rdbuf();
    const std::string trace = buffer.str();
    EXPECT_NE(trace.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(trace.find("\"queue_wait\""), std::string::npos);
    EXPECT_NE(trace.find("0102030405060709"), std::string::npos);
    EXPECT_NE(trace.find("\"droppedSpans\""), std::string::npos);
    std::filesystem::remove(path);
    telemetry::setMetricsEnabled(false);
}

TEST(Loopback, FullAcceptQueueAnswersBusy)
{
    server::ServerOptions options = ephemeralTcpOptions();
    options.maxPending = 0; // Every accept is immediately rejected.
    LiveServer live(options);
    ASSERT_TRUE(live.started());

    std::string err;
    client::Client client =
        client::Client::connectTcp("127.0.0.1", live.tcpPort(), err);
    ASSERT_TRUE(client.connected()) << err;
    EXPECT_FALSE(client.ping(err));
    EXPECT_EQ(client.lastErrorCode(), wire::ErrorCode::Busy);
}

// ---------------------------------------------------------------------
// Scenario traffic end-to-end

/** Fetch the server's counters as a name -> value map. */
std::map<std::string, std::uint64_t>
fetchCounters(client::Client &client)
{
    std::map<std::string, std::uint64_t> counters;
    std::string json, err;
    EXPECT_TRUE(client.stats(json, err)) << err;
    JsonValue doc;
    EXPECT_TRUE(parseJson(json, doc, &err)) << err;
    const JsonValue *object = doc.find("counters");
    if (object == nullptr || !object->isObject())
        return counters;
    for (const auto &[name, value] : object->object)
        counters[name] = static_cast<std::uint64_t>(value.number);
    return counters;
}

/** Local per-tenant accumulation to check the server's books against. */
struct TenantLedger
{
    std::uint64_t requests = 0;
    std::uint64_t txs = 0;
    std::uint64_t onesIn = 0;
    std::uint64_t onesOut = 0;
};

std::string
streamCounterName(std::uint32_t tenant, const char *leaf)
{
    return "bxt.server.stream." + std::to_string(tenant + 1) + "." + leaf;
}

/**
 * Replay @p requests of a scenario preset through @p client, tagging
 * each request with its tenant's stream id, and return the per-tenant
 * ledger. Fails the test on any protocol error.
 */
std::vector<TenantLedger>
replayScenario(const std::string &name, std::uint32_t requests,
               client::Client &client)
{
    scenario::Config config;
    std::string err;
    EXPECT_TRUE(scenario::load(name, config, err)) << err;
    config.requests = requests;
    scenario::Engine engine(config, /*seed=*/0x5ce0);

    std::vector<TenantLedger> ledger(config.tenants);
    scenario::Request request;
    while (engine.next(request)) {
        client.setStreamId(static_cast<std::uint16_t>(request.tenant + 1));
        client::EncodeResult enc;
        EXPECT_TRUE(client.encode(request.spec, request.txBytes,
                                  request.busBits, request.payload, enc,
                                  err))
            << name << " request " << request.index << ": " << err;
        TenantLedger &slot = ledger[request.tenant];
        slot.requests += 1;
        slot.txs += enc.count;
        slot.onesIn += enc.inputOnes;
        slot.onesOut += enc.payloadOnes + enc.metaOnes;
    }
    client.setStreamId(0);
    return ledger;
}

TEST(Loopback, ScenarioPerStreamStatsTelescopeToAggregate)
{
    telemetry::resetForTest();
    telemetry::setMetricsEnabled(true);
    LiveServer live(ephemeralTcpOptions());
    ASSERT_TRUE(live.started());

    std::string err;
    client::Client client =
        client::Client::connectTcp("127.0.0.1", live.tcpPort(), err);
    ASSERT_TRUE(client.connected()) << err;

    const std::vector<TenantLedger> ledger =
        replayScenario("zipf-0.99", /*requests=*/96, client);
    const std::map<std::string, std::uint64_t> counters =
        fetchCounters(client);
    telemetry::setMetricsEnabled(false);

    // Every tenant's server-side stream counters must match the client's
    // own ledger exactly…
    std::uint64_t stream_req = 0, stream_tx = 0, stream_in = 0,
                  stream_out = 0;
    for (std::uint32_t t = 0; t < ledger.size(); ++t) {
        const TenantLedger &want = ledger[t];
        const auto counter = [&](const char *leaf) {
            const auto it = counters.find(streamCounterName(t, leaf));
            return it == counters.end() ? std::uint64_t{0} : it->second;
        };
        EXPECT_EQ(counter("requests"), want.requests) << "tenant " << t;
        EXPECT_EQ(counter("tx_encoded"), want.txs) << "tenant " << t;
        EXPECT_EQ(counter("ones_in"), want.onesIn) << "tenant " << t;
        EXPECT_EQ(counter("ones_out"), want.onesOut) << "tenant " << t;
        stream_req += counter("requests");
        stream_tx += counter("tx_encoded");
        stream_in += counter("ones_in");
        stream_out += counter("ones_out");
    }

    // …and telescope to the untagged aggregates (the Stats fetch itself
    // was untagged, so it appears only in the aggregate request count).
    ASSERT_NE(counters.find("bxt.server.tx_encoded"), counters.end());
    EXPECT_EQ(stream_tx, counters.at("bxt.server.tx_encoded"));
    EXPECT_EQ(stream_req + 1, counters.at("bxt.server.requests"));
    std::uint64_t spec_in = 0, spec_out = 0;
    for (const auto &[name, value] : counters) {
        // Per-spec server counters only — not the per-stream copies and
        // not the bxt.codec.* per-stage flow counters.
        if (name.rfind("bxt.server.", 0) != 0 ||
            name.find(".stream.") != std::string::npos)
            continue;
        if (name.size() > 8 &&
            name.compare(name.size() - 8, 8, ".ones_in") == 0)
            spec_in += value;
        if (name.size() > 9 &&
            name.compare(name.size() - 9, 9, ".ones_out") == 0)
            spec_out += value;
    }
    EXPECT_EQ(stream_in, spec_in);
    EXPECT_EQ(stream_out, spec_out);
    EXPECT_EQ(counters.at("bxt.server.errors"), 0u);
}

TEST(Loopback, ScenarioHotFloodBackpressureStaysClean)
{
    telemetry::resetForTest();
    telemetry::setMetricsEnabled(true);
    LiveServer live(ephemeralTcpOptions());
    ASSERT_TRUE(live.started());

    // Three connections replay hot-flood shares concurrently against the
    // 2-thread server, so requests queue behind the worker pool; every
    // frame must still complete without a protocol error.
    constexpr std::uint32_t kRequests = 32;
    constexpr std::size_t kConns = 3;
    std::vector<std::vector<TenantLedger>> ledgers(kConns);
    std::vector<std::thread> threads;
    for (std::size_t c = 0; c < kConns; ++c) {
        threads.emplace_back([&, c] {
            std::string err;
            client::Client client = client::Client::connectTcp(
                "127.0.0.1", live.tcpPort(), err);
            ASSERT_TRUE(client.connected()) << err;
            ledgers[c] = replayScenario("hot-flood", kRequests, client);
        });
    }
    for (std::thread &t : threads)
        t.join();

    std::string err;
    client::Client client =
        client::Client::connectTcp("127.0.0.1", live.tcpPort(), err);
    ASSERT_TRUE(client.connected()) << err;
    const std::map<std::string, std::uint64_t> counters =
        fetchCounters(client);
    telemetry::setMetricsEnabled(false);

    std::uint64_t want_req = 0, want_tx = 0, hot_req = 0;
    for (const std::vector<TenantLedger> &ledger : ledgers) {
        ASSERT_FALSE(ledger.empty());
        hot_req += ledger[0].requests;
        for (const TenantLedger &slot : ledger) {
            want_req += slot.requests;
            want_tx += slot.txs;
        }
    }
    EXPECT_EQ(want_req, kRequests * kConns);

    std::uint64_t stream_req = 0, stream_tx = 0;
    for (const auto &[name, value] : counters) {
        if (name.find(".stream.") == std::string::npos)
            continue;
        if (name.size() > 9 &&
            name.compare(name.size() - 9, 9, ".requests") == 0)
            stream_req += value;
        if (name.size() > 11 &&
            name.compare(name.size() - 11, 11, ".tx_encoded") == 0)
            stream_tx += value;
    }
    EXPECT_EQ(stream_req, want_req);
    EXPECT_EQ(stream_tx, want_tx);
    EXPECT_EQ(counters.at("bxt.server.errors"), 0u);

    // The flood really is a flood: tenant 0 (stream 1) dominates.
    EXPECT_GT(static_cast<double>(hot_req),
              0.8 * static_cast<double>(want_req));
    EXPECT_EQ(counters.at(streamCounterName(0, "requests")), hot_req);
}

TEST(Loopback, GracefulDrainClosesIdleConnections)
{
    LiveServer live(ephemeralTcpOptions());
    ASSERT_TRUE(live.started());

    std::string err;
    client::Client client =
        client::Client::connectTcp("127.0.0.1", live.tcpPort(), err);
    ASSERT_TRUE(client.connected()) << err;
    ASSERT_TRUE(client.ping(err)) << err;

    // stop() returns only after serve() drained: the held connection
    // must not block shutdown.
    live.stop();
    EXPECT_FALSE(client.ping(err));
}

// ---------------------------------------------------------------------
// Sharded serving end-to-end (DESIGN.md §14)

/** Fetch a named gauge from the server's Stats document (0 if absent). */
double
fetchGauge(client::Client &client, const std::string &name)
{
    std::string json, err;
    EXPECT_TRUE(client.stats(json, err)) << err;
    JsonValue doc;
    EXPECT_TRUE(parseJson(json, doc, &err)) << err;
    const JsonValue *object = doc.find("gauges");
    if (object == nullptr || !object->isObject())
        return 0.0;
    const JsonValue *value = object->find(name);
    return value != nullptr && value->isNumber() ? value->number : 0.0;
}

TEST(Sharded, FleetTotalsTelescopeToShardBreakdown)
{
    telemetry::resetForTest();
    telemetry::setMetricsEnabled(true);
    server::ServerOptions options;
    options.tcpPort = 0;
    options.shards = 4;
    LiveServer live(options);
    ASSERT_TRUE(live.started());

    // Spread traffic across reconnecting clients so SO_REUSEPORT lands
    // work on multiple shards (which shard gets which connection is the
    // kernel's choice — the accounting must hold regardless).
    constexpr std::size_t kConns = 12;
    constexpr std::size_t kRequestsPerConn = 5;
    const std::vector<std::uint8_t> raw(8 * 32, 0xa5);
    std::string err;
    for (std::size_t c = 0; c < kConns; ++c) {
        client::Client client =
            client::Client::connectTcp("127.0.0.1", live.tcpPort(), err);
        ASSERT_TRUE(client.connected()) << err;
        for (std::size_t i = 0; i < kRequestsPerConn; ++i) {
            client::EncodeResult enc;
            ASSERT_TRUE(client.encode("xor4+zdr", 32, 32, raw, enc, err))
                << err;
        }
    }

    client::Client stats_client =
        client::Client::connectTcp("127.0.0.1", live.tcpPort(), err);
    ASSERT_TRUE(stats_client.connected()) << err;
    EXPECT_EQ(fetchGauge(stats_client, "bxt.server.shards"), 4.0);
    const std::map<std::string, std::uint64_t> counters =
        fetchCounters(stats_client);
    telemetry::setMetricsEnabled(false);

    // Every broken-out leaf must telescope exactly: the fleet total is
    // the sum of the bxt.server.shard.<i>.* copies, nothing more.
    for (const char *leaf :
         {"requests", "tx_encoded", "connections", "rejected_busy",
          "errors"}) {
        const std::string total_name = std::string("bxt.server.") + leaf;
        ASSERT_NE(counters.find(total_name), counters.end()) << leaf;
        std::uint64_t shard_sum = 0;
        std::size_t shards_seen = 0;
        for (std::size_t s = 0; s < 4; ++s) {
            const auto it = counters.find("bxt.server.shard." +
                                          std::to_string(s) + "." + leaf);
            if (it != counters.end()) {
                shard_sum += it->second;
                ++shards_seen;
            }
        }
        EXPECT_EQ(counters.at(total_name), shard_sum) << leaf;
        EXPECT_EQ(shards_seen, 4u) << leaf;
    }
    // All the work really happened (the +1s are the Stats fetches).
    EXPECT_EQ(counters.at("bxt.server.requests"),
              kConns * kRequestsPerConn + 2);
    EXPECT_EQ(counters.at("bxt.server.tx_encoded"),
              kConns * kRequestsPerConn * 8);
    EXPECT_EQ(counters.at("bxt.server.errors"), 0u);
}

TEST(Sharded, GracefulDrainAnswersInFlightFramesOnEveryShard)
{
    telemetry::resetForTest();
    telemetry::setMetricsEnabled(true);
    server::ServerOptions options;
    options.tcpPort = 0;
    options.shards = 4;
    LiveServer live(options);
    ASSERT_TRUE(live.started());

    // Enough connections that every shard almost surely owns several;
    // each first completes a synchronous ping (so the shard has adopted
    // it), then pipelines a burst of raw frames without reading.
    constexpr std::size_t kConns = 16;
    constexpr std::size_t kBurst = 24;
    const std::vector<std::uint8_t> ping_bytes =
        wire::serializeFrame(pingFrame());
    std::vector<std::uint8_t> burst;
    for (std::size_t i = 0; i < kBurst; ++i)
        burst.insert(burst.end(), ping_bytes.begin(), ping_bytes.end());

    std::string err;
    std::vector<client::Client> clients;
    clients.reserve(kConns);
    for (std::size_t c = 0; c < kConns; ++c) {
        clients.push_back(
            client::Client::connectTcp("127.0.0.1", live.tcpPort(), err));
        ASSERT_TRUE(clients.back().connected()) << err;
        ASSERT_TRUE(clients.back().ping(err)) << err;
        ASSERT_TRUE(net::writeAll(clients.back().rawFd(), burst.data(),
                                  burst.size(), err))
            << err;
    }
    // The bursts are in flight (kernel buffers) when the stop arrives.
    live.stop();
    telemetry::setMetricsEnabled(false);

    // Every pipelined frame the server accepted must have been answered
    // before its connection closed: read each socket to EOF and count.
    for (std::size_t c = 0; c < kConns; ++c) {
        wire::FrameParser parser;
        std::uint8_t buf[4096];
        for (;;) {
            const long n = net::readSome(clients[c].rawFd(), buf,
                                         sizeof(buf), err);
            ASSERT_GE(n, 0) << "conn " << c << ": " << err;
            if (n == 0)
                break;
            parser.feed(buf, static_cast<std::size_t>(n));
        }
        std::size_t replies = 0;
        for (;;) {
            wire::Frame frame;
            wire::WireError wire_err;
            if (parser.next(frame, wire_err) !=
                wire::FrameParser::Status::Ready)
                break;
            EXPECT_EQ(frame.opcode, wire::Opcode::Ping);
            ++replies;
        }
        EXPECT_EQ(replies, kBurst) << "conn " << c;
    }
}

TEST(Sharded, AdaptiveStreamSurvivesReconnectsAcrossShards)
{
    telemetry::resetForTest();
    telemetry::setMetricsEnabled(true);
    server::ServerOptions options;
    options.tcpPort = 0;
    options.shards = 4;
    LiveServer live(options);
    ASSERT_TRUE(live.started());

    // One logical tenant (stream 5) reconnecting repeatedly: each
    // connection may land on a different shard, where a fresh
    // shard-local controller serves it. The announcement contract must
    // hold on every shard — a concrete spec plus epoch that decodes the
    // payload — and the per-stream accounting must merge across shards.
    const std::string spec = "adaptive:xor2+zdr,baseline,w=8,p=8,h=0";
    constexpr std::size_t kReconnects = 6;
    constexpr std::size_t kEncodesPerConn = 4;
    const std::vector<std::uint8_t> raw(16 * 32, 0xff);
    std::string err;
    for (std::size_t c = 0; c < kReconnects; ++c) {
        client::Client client =
            client::Client::connectTcp("127.0.0.1", live.tcpPort(), err);
        ASSERT_TRUE(client.connected()) << err;
        client.setStreamId(5);
        for (std::size_t i = 0; i < kEncodesPerConn; ++i) {
            client::EncodeResult enc;
            ASSERT_TRUE(client.encode(spec, 32, 32, raw, enc, err))
                << err;
            ASSERT_FALSE(enc.announcedSpec.empty());
            client::DecodeResult dec;
            ASSERT_TRUE(client.decode(enc.announcedSpec, enc, dec, err))
                << err;
            ASSERT_EQ(dec.raw.size(), raw.size());
            EXPECT_EQ(
                std::memcmp(dec.raw.data(), raw.data(), raw.size()), 0);
        }
    }

    client::Client stats_client =
        client::Client::connectTcp("127.0.0.1", live.tcpPort(), err);
    ASSERT_TRUE(stats_client.connected()) << err;
    const std::map<std::string, std::uint64_t> counters =
        fetchCounters(stats_client);
    telemetry::setMetricsEnabled(false);

    // The fleet view of stream 5 sums its shard-local slices exactly:
    // one requests tick per tagged encode and decode.
    EXPECT_EQ(counters.at("bxt.server.stream.5.requests"),
              kReconnects * kEncodesPerConn * 2);
    EXPECT_EQ(counters.at("bxt.server.stream.5.tx_encoded"),
              kReconnects * kEncodesPerConn * 16);
    EXPECT_EQ(counters.at("bxt.server.errors"), 0u);
}

} // namespace
} // namespace bxt
