/**
 * @file
 * SIMD dispatch-layer suite: level parsing and BXT_SIMD resolution
 * semantics (invalid names fall back to scalar with a warning, never an
 * abort), per-primitive differential checks of every available kernel
 * table against the strict byte-loop scalar reference, and the golden
 * corpus plus the batch differential fuzzer replayed at every dispatch
 * level the host supports.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/simd/kernels.h"
#include "core/simd/simd.h"
#include "verify/batch_check.h"
#include "verify/golden.h"

namespace bxt {
namespace {

using simd::Level;

/** Restores the entry dispatch level when a test scope ends. */
class ScopedLevel
{
  public:
    ScopedLevel() : saved_(simd::activeLevel()) {}
    ~ScopedLevel() { simd::setActiveLevel(saved_); }

  private:
    Level saved_;
};

TEST(SimdDispatch, ParseLevelRecognizesEveryNameCaseInsensitively)
{
    for (Level level : {Level::Scalar, Level::Word, Level::Neon,
                        Level::Avx2, Level::Avx512}) {
        const std::string name = simd::levelName(level);
        EXPECT_EQ(simd::parseLevel(name), level);
        std::string upper = name;
        for (char &ch : upper)
            if (ch >= 'a' && ch <= 'z')
                ch = static_cast<char>(ch - 'a' + 'A');
        EXPECT_EQ(simd::parseLevel(upper), level) << upper;
    }
    EXPECT_FALSE(simd::parseLevel("").has_value());
    EXPECT_FALSE(simd::parseLevel("avx1024").has_value());
    EXPECT_FALSE(simd::parseLevel("sse").has_value());
}

TEST(SimdDispatch, UnrecognizedEnvValueFallsBackToScalarWithWarning)
{
    // The BXT_SIMD contract: garbage must not abort the process — it
    // resolves to the scalar reference and says so on stderr.
    ASSERT_EQ(setenv("BXT_SIMD", "definitely-not-a-level", 1), 0);
    std::string warning;
    const Level level = simd::resolveRequestedLevel(
        std::getenv("BXT_SIMD"), &warning);
    EXPECT_EQ(level, Level::Scalar);
    EXPECT_FALSE(warning.empty());
    EXPECT_NE(warning.find("definitely-not-a-level"), std::string::npos);
    // And it is not treated as a forced level elsewhere (the bench sweep
    // keys off envForcedLevel to pin its level list).
    EXPECT_FALSE(simd::envForcedLevel().has_value());
    ASSERT_EQ(unsetenv("BXT_SIMD"), 0);
}

TEST(SimdDispatch, EmptyEnvPicksBestLevelWithoutWarning)
{
    std::string warning;
    EXPECT_EQ(simd::resolveRequestedLevel(nullptr, &warning),
              simd::bestLevel());
    EXPECT_TRUE(warning.empty());
    EXPECT_EQ(simd::resolveRequestedLevel("", &warning),
              simd::bestLevel());
    EXPECT_TRUE(warning.empty());
}

TEST(SimdDispatch, UnsupportedRequestClampsDownWithWarning)
{
    // Scalar and word are always installable, so a supported request
    // resolves verbatim and silently.
    std::string warning;
    EXPECT_EQ(simd::resolveRequestedLevel("scalar", &warning),
              Level::Scalar);
    EXPECT_TRUE(warning.empty());
    EXPECT_EQ(simd::resolveRequestedLevel("word", &warning), Level::Word);
    EXPECT_TRUE(warning.empty());

    // A valid name the host cannot run clamps to the best level at or
    // below it and warns. On hosts that support everything there is
    // nothing to clamp; the contract still holds vacuously.
    for (Level level : {Level::Neon, Level::Avx2, Level::Avx512}) {
        if (simd::levelSupported(level))
            continue;
        const Level got = simd::resolveRequestedLevel(
            simd::levelName(level), &warning);
        EXPECT_TRUE(simd::levelSupported(got));
        EXPECT_LT(static_cast<int>(got), static_cast<int>(level));
        EXPECT_FALSE(warning.empty());
    }
}

TEST(SimdDispatch, SetActiveLevelInstallsEverySupportedLevel)
{
    ScopedLevel guard;
    for (Level level : simd::supportedLevels()) {
        EXPECT_EQ(simd::setActiveLevel(level), level);
        EXPECT_EQ(simd::activeLevel(), level);
    }
    EXPECT_TRUE(simd::levelSupported(Level::Scalar));
    EXPECT_TRUE(simd::levelSupported(Level::Word));
}

/**
 * Byte plane whose lanes hit every ZDR case: zero lanes (encode's
 * highest-precedence rule), lanes equal to base^C and to base (the
 * decode collision corners), plus dense random filler.
 */
std::vector<std::uint8_t>
makeZdrPlane(std::size_t bytes, std::size_t lane,
             const std::vector<std::uint8_t> &base, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<std::uint8_t> plane(bytes);
    for (std::size_t off = 0; off < bytes; off += lane) {
        const std::uint64_t pick = rng.nextBounded(5);
        for (std::size_t b = 0; b < lane; ++b) {
            const std::uint8_t base_byte = base[off + b];
            // C has 0x40 in the lane's most-significant byte only.
            const std::uint8_t c_byte = b + 1 == lane ? 0x40 : 0x00;
            switch (pick) {
            case 0: plane[off + b] = 0; break;
            case 1: plane[off + b] = base_byte ^ c_byte; break;
            case 2: plane[off + b] = base_byte; break;
            case 3: plane[off + b] = c_byte; break;
            default:
                plane[off + b] = static_cast<std::uint8_t>(rng.next64());
            }
        }
    }
    return plane;
}

std::vector<std::uint8_t>
randomBytes(std::size_t n, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<std::uint8_t> out(n);
    for (std::uint8_t &byte : out)
        byte = static_cast<std::uint8_t>(rng.next64());
    return out;
}

/** Sizes the range primitives are diffed at: vector-width multiples,
 *  sub-vector runs, and ragged tails for every register width. */
const std::vector<std::size_t> rangeSizes = {8,   16,  24,  32,  40,
                                             64,  72,  96,  128, 136,
                                             192, 256, 264, 512, 1024};

TEST(SimdKernels, RangePrimitivesMatchScalarAtEveryLevel)
{
    const simd::KernelTable &ref = simd::detail::scalarTable();
    for (Level level : simd::supportedLevels()) {
        SCOPED_TRACE(simd::levelName(level));
        ASSERT_EQ(simd::setActiveLevel(level), level);
        const simd::KernelTable &ops = simd::ops();
        EXPECT_EQ(ops.level, level);

        std::uint64_t seed = 0x51D0 + static_cast<std::uint64_t>(level);
        for (std::size_t n : rangeSizes) {
            const std::vector<std::uint8_t> base = randomBytes(n, seed++);
            const std::vector<std::uint8_t> in = randomBytes(n, seed++);

            std::vector<std::uint8_t> got(n), want(n);
            ops.xorRange(got.data(), in.data(), base.data(), n);
            ref.xorRange(want.data(), in.data(), base.data(), n);
            EXPECT_EQ(got, want) << "xorRange n=" << n;

            EXPECT_EQ(ops.popcountRange(in.data(), n),
                      ref.popcountRange(in.data(), n))
                << "popcountRange n=" << n;
            EXPECT_EQ(ops.popcountXorRange(in.data(), base.data(), n),
                      ref.popcountXorRange(in.data(), base.data(), n))
                << "popcountXorRange n=" << n;

            struct ZdrCase
            {
                std::size_t lane;
                void (*enc)(std::uint8_t *, const std::uint8_t *,
                            const std::uint8_t *, std::size_t);
                void (*dec)(std::uint8_t *, const std::uint8_t *,
                            const std::uint8_t *, std::size_t);
                void (*ref_enc)(std::uint8_t *, const std::uint8_t *,
                                const std::uint8_t *, std::size_t);
                void (*ref_dec)(std::uint8_t *, const std::uint8_t *,
                                const std::uint8_t *, std::size_t);
            };
            const ZdrCase cases[] = {
                {2, ops.zdrEncode16, ops.zdrDecode16, ref.zdrEncode16,
                 ref.zdrDecode16},
                {4, ops.zdrEncode32, ops.zdrDecode32, ref.zdrEncode32,
                 ref.zdrDecode32},
                {8, ops.zdrEncode64, ops.zdrDecode64, ref.zdrEncode64,
                 ref.zdrDecode64},
            };
            for (const ZdrCase &zc : cases) {
                if (n % zc.lane != 0)
                    continue;
                const std::vector<std::uint8_t> lanes =
                    makeZdrPlane(n, zc.lane, base, seed++);
                zc.enc(got.data(), lanes.data(), base.data(), n);
                zc.ref_enc(want.data(), lanes.data(), base.data(), n);
                EXPECT_EQ(got, want)
                    << "zdrEncode lane=" << zc.lane << " n=" << n;

                std::vector<std::uint8_t> back(n), ref_back(n);
                zc.dec(back.data(), got.data(), base.data(), n);
                zc.ref_dec(ref_back.data(), want.data(), base.data(), n);
                EXPECT_EQ(back, ref_back)
                    << "zdrDecode lane=" << zc.lane << " n=" << n;
                EXPECT_EQ(back, lanes)
                    << "zdr round-trip lane=" << zc.lane << " n=" << n;
            }
        }
    }
}

TEST(SimdKernels, DbiPlanePrimitivesMatchScalarAtEveryLevel)
{
    const simd::KernelTable &ref = simd::detail::scalarTable();
    for (Level level : simd::supportedLevels()) {
        SCOPED_TRACE(simd::levelName(level));
        ASSERT_EQ(simd::setActiveLevel(level), level);
        const simd::KernelTable &ops = simd::ops();

        std::uint64_t seed = 0xDB1 + static_cast<std::uint64_t>(level);
        for (std::size_t group_bytes : {std::size_t{1}, std::size_t{2},
                                        std::size_t{4}, std::size_t{8}}) {
            for (std::size_t groups :
                 {std::size_t{1}, std::size_t{3}, std::size_t{8},
                  std::size_t{31}, std::size_t{64}, std::size_t{129},
                  std::size_t{512}}) {
                const std::size_t n = groups * group_bytes;
                const std::vector<std::uint8_t> plane =
                    randomBytes(n, seed++);

                std::vector<std::uint8_t> got = plane, want = plane;
                std::vector<std::uint8_t> got_meta(groups, 0xcc);
                std::vector<std::uint8_t> want_meta(groups, 0xcc);
                ops.dbiEncodePlane(got.data(), got_meta.data(), groups,
                                   group_bytes);
                ref.dbiEncodePlane(want.data(), want_meta.data(), groups,
                                   group_bytes);
                EXPECT_EQ(got, want) << "dbiEncodePlane gb=" << group_bytes
                                     << " groups=" << groups;
                EXPECT_EQ(got_meta, want_meta)
                    << "dbi meta gb=" << group_bytes
                    << " groups=" << groups;

                ops.dbiDecodePlane(got.data(), got_meta.data(), groups,
                                   group_bytes);
                EXPECT_EQ(got, plane)
                    << "dbi round-trip gb=" << group_bytes
                    << " groups=" << groups;
            }
        }
    }
}

TEST(SimdGolden, CorpusIsBitIdenticalAtEveryLevel)
{
    ScopedLevel guard;
    for (Level level : simd::supportedLevels()) {
        SCOPED_TRACE(simd::levelName(level));
        ASSERT_EQ(simd::setActiveLevel(level), level);
        for (unsigned wires : {32u, 64u}) {
            for (const std::string &spec : verify::goldenSpecs(wires)) {
                const std::string path =
                    std::string(BXT_GOLDEN_DIR) + "/" +
                    verify::goldenFileName(spec, wires);
                for (const std::string &diff :
                     verify::checkGoldenFileBatch(path))
                    ADD_FAILURE() << simd::levelName(level) << ": "
                                  << diff;
            }
        }
    }
}

TEST(SimdFuzz, BatchDifferentialHoldsAtEveryLevel)
{
    ScopedLevel guard;
    for (Level level : simd::supportedLevels()) {
        SCOPED_TRACE(simd::levelName(level));
        ASSERT_EQ(simd::setActiveLevel(level), level);

        // Smaller per-level budget than test_batch's campaign: the sweep
        // multiplies by the level count, and the per-primitive diffs
        // above already cover the lane algebra densely.
        verify::BatchFuzzOptions options;
        options.streamsPerSpec = 4;
        options.txPerStream = 64;
        options.batchSizes = {1, 7, 64};
        options.seed = 0x51D0F00D + static_cast<std::uint64_t>(level);

        const verify::BatchFuzzReport report =
            verify::runBatchDifferentialFuzz(options);
        EXPECT_GT(report.transactionsChecked, 0u);
        for (const verify::BatchFuzzFailure &failure : report.failures)
            ADD_FAILURE() << simd::levelName(level) << ": "
                          << failure.spec << " wires="
                          << failure.dataWires << " batch="
                          << failure.batchTx << " seed=" << failure.seed << ": "
                          << failure.violation.invariant << " "
                          << failure.violation.detail;
    }
}

} // namespace
} // namespace bxt
