/**
 * @file
 * Unit tests for common/stats.h.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/stats.h"

namespace bxt {
namespace {

TEST(RunningStat, Empty)
{
    RunningStat s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.variance(), 0.0);
    EXPECT_EQ(s.min(), 0.0);
    EXPECT_EQ(s.max(), 0.0);
}

TEST(RunningStat, SingleSample)
{
    RunningStat s;
    s.add(4.5);
    EXPECT_EQ(s.count(), 1u);
    EXPECT_DOUBLE_EQ(s.mean(), 4.5);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
    EXPECT_DOUBLE_EQ(s.min(), 4.5);
    EXPECT_DOUBLE_EQ(s.max(), 4.5);
}

TEST(RunningStat, MatchesDirectComputation)
{
    const double samples[] = {1.0, 2.5, -3.0, 4.25, 0.0, 7.5};
    RunningStat s;
    double sum = 0.0;
    for (double x : samples) {
        s.add(x);
        sum += x;
    }
    const double mean = sum / 6.0;
    double var = 0.0;
    for (double x : samples)
        var += (x - mean) * (x - mean);
    var /= 5.0;

    EXPECT_NEAR(s.mean(), mean, 1e-12);
    EXPECT_NEAR(s.variance(), var, 1e-12);
    EXPECT_NEAR(s.stddev(), std::sqrt(var), 1e-12);
    EXPECT_DOUBLE_EQ(s.min(), -3.0);
    EXPECT_DOUBLE_EQ(s.max(), 7.5);
}

TEST(Mean, Basics)
{
    EXPECT_DOUBLE_EQ(mean({}), 0.0);
    EXPECT_DOUBLE_EQ(mean({2.0}), 2.0);
    EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0}), 2.0);
}

TEST(Geomean, Basics)
{
    EXPECT_NEAR(geomean({4.0, 9.0}), 6.0, 1e-12);
    EXPECT_NEAR(geomean({1.0, 1.0, 8.0}), 2.0, 1e-12);
}

TEST(Median, OddAndEven)
{
    EXPECT_DOUBLE_EQ(median({}), 0.0);
    EXPECT_DOUBLE_EQ(median({3.0, 1.0, 2.0}), 2.0);
    EXPECT_DOUBLE_EQ(median({4.0, 1.0, 3.0, 2.0}), 2.5);
}

TEST(FormatPercent, Rounds)
{
    EXPECT_EQ(formatPercent(0.353), "35.3");
    EXPECT_EQ(formatPercent(0.0), "0.0");
    EXPECT_EQ(formatPercent(1.0, 0), "100");
    EXPECT_EQ(formatPercent(0.0714, 2), "7.14");
}

} // namespace
} // namespace bxt
