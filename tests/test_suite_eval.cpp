/**
 * @file
 * Unit tests for the bench-side suite evaluation harness (per-app and
 * traffic-weighted aggregations used by the figure benches).
 */

#include <gtest/gtest.h>

#include "suite_eval.h"
#include "workloads/apps.h"

namespace bxt {
namespace {

std::vector<App>
twoApps()
{
    std::vector<App> all = buildGpuSuite();
    std::vector<App> sample;
    sample.push_back(std::move(all[0]));
    sample.push_back(std::move(all[50]));
    return sample;
}

TEST(SuiteEval, ProducesOneResultPerApp)
{
    std::vector<App> apps = twoApps();
    const auto results =
        evalSuite(apps, {"baseline", "universal3+zdr"}, 128);
    ASSERT_EQ(results.size(), 2u);
    for (const AppResult &r : results) {
        EXPECT_EQ(r.stats.size(), 2u);
        EXPECT_GT(r.rawOnes, 0u);
        EXPECT_FALSE(r.app.empty());
    }
}

TEST(SuiteEval, BaselineNormalizesToOne)
{
    std::vector<App> apps = twoApps();
    const auto results = evalSuite(apps, {"baseline"}, 128);
    for (const AppResult &r : results) {
        EXPECT_DOUBLE_EQ(r.normalizedOnes("baseline"), 1.0);
        EXPECT_DOUBLE_EQ(r.normalizedToggles("baseline"), 1.0);
    }
    EXPECT_DOUBLE_EQ(meanNormalizedOnes(results, "baseline"), 1.0);
    EXPECT_DOUBLE_EQ(aggregateNormalizedOnes(results, "baseline"), 1.0);
    EXPECT_DOUBLE_EQ(aggregateNormalizedToggles(results, "baseline"), 1.0);
}

TEST(SuiteEval, AggregateIsTrafficWeighted)
{
    // Hand-built results: app A has 10x the traffic of app B; the
    // aggregate must be dominated by A while the mean weighs them
    // equally.
    AppResult a;
    a.rawOnes = 1000;
    BusStats sa;
    sa.dataOnes = 500;
    a.stats.emplace("x", sa);
    AppResult b;
    b.rawOnes = 100;
    BusStats sb;
    sb.dataOnes = 100;
    b.stats.emplace("x", sb);
    std::vector<AppResult> results;
    results.push_back(std::move(a));
    results.push_back(std::move(b));

    EXPECT_NEAR(meanNormalizedOnes(results, "x"), (0.5 + 1.0) / 2, 1e-12);
    EXPECT_NEAR(aggregateNormalizedOnes(results, "x"), 600.0 / 1100.0,
                1e-12);
}

TEST(SuiteEval, MixedRatioIsPopulated)
{
    std::vector<App> all = buildGpuSuite();
    std::vector<App> sparse;
    for (App &app : all) {
        if (app.family == "sparse-zero") {
            sparse.push_back(std::move(app));
            break;
        }
    }
    ASSERT_EQ(sparse.size(), 1u);
    const auto results = evalSuite(sparse, {"baseline"}, 256);
    EXPECT_GT(results[0].mixedRatio, 0.2);
}

TEST(SuiteEval, CpuAppsUseSixtyFourBitBus)
{
    std::vector<App> apps = buildCpuSuite();
    apps.resize(1);
    const auto results = evalSuite(apps, {"baseline"}, 64);
    // 64 transactions x 64 bytes over a 64-bit bus = 8 beats each.
    EXPECT_EQ(results[0].stats.at("baseline").beats, 64u * 8u);
}

} // namespace
} // namespace bxt
