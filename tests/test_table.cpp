/**
 * @file
 * Unit tests for the ASCII table renderer.
 */

#include <gtest/gtest.h>

#include "common/table.h"

namespace bxt {
namespace {

TEST(Table, RendersHeaderAndRows)
{
    Table t({"name", "value"});
    t.addRow({"alpha", "1.5"});
    t.addRow({"beta", "22.0"});
    const std::string out = t.render();
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("alpha"), std::string::npos);
    EXPECT_NE(out.find("22.0"), std::string::npos);
    EXPECT_NE(out.find("|-"), std::string::npos);
    EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, CellFormatting)
{
    EXPECT_EQ(Table::cell(1.25, 1), "1.2");
    EXPECT_EQ(Table::cell(1.25, 2), "1.25");
    EXPECT_EQ(Table::cell(std::size_t{42}), "42");
}

TEST(Table, ColumnsAligned)
{
    Table t({"a", "b"});
    t.addRow({"xxxx", "1"});
    t.addRow({"y", "222"});
    const std::string out = t.render();
    // Every line must have the same length (aligned columns).
    std::size_t line_len = out.find('\n');
    std::size_t pos = 0;
    while (pos < out.size()) {
        const std::size_t next = out.find('\n', pos);
        EXPECT_EQ(next - pos, line_len);
        pos = next + 1;
    }
}

TEST(Banner, ContainsTitle)
{
    EXPECT_NE(banner("Figure 1").find("Figure 1"), std::string::npos);
}

} // namespace
} // namespace bxt
