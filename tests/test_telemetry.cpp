/**
 * @file
 * Telemetry subsystem tests: instrument correctness under thread-pool
 * contention, snapshot schema round-trip, Chrome trace export, the
 * zero-cost-when-off guard, and the per-stage attribution acceptance
 * check — the pipeline stage counters of a `universal3+zdr|dbi4` run
 * must telescope to the exact Bus ones total, cross-checked against the
 * bit-level reference bus.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "channel/channel_eval.h"
#include "common/json.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "core/codec_factory.h"
#include "telemetry/metrics.h"
#include "telemetry/snapshot.h"
#include "telemetry/spanring.h"
#include "telemetry/trace.h"
#include "verify/reference_bus.h"
#include "workloads/patterns.h"

namespace bxt {
namespace {

namespace tm = bxt::telemetry;

/** Every test starts from a zeroed, enabled registry and leaves both the
 *  metrics gate and the trace gate off. */
class TelemetryTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        tm::resetForTest();
        tm::setMetricsEnabled(true);
    }

    void TearDown() override
    {
        tm::setMetricsEnabled(false);
        tm::setTraceEnabled(false);
        tm::resetForTest();
    }
};

/** Deterministic mixed-content 32-byte transaction stream. */
std::vector<Transaction>
makeStream(std::size_t count)
{
    PatternPtr pattern = makeSoaFloatPattern(1.0e3, 1.0e-3, 7);
    Rng rng(11);
    std::vector<Transaction> stream;
    stream.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        Transaction tx(32);
        pattern->fill(rng, tx.bytes());
        stream.push_back(tx);
    }
    return stream;
}

const JsonValue &
member(const JsonValue &object, const std::string &key)
{
    const JsonValue *value = object.find(key);
    EXPECT_NE(value, nullptr) << "missing member " << key;
    static const JsonValue null_value;
    return value != nullptr ? *value : null_value;
}

TEST_F(TelemetryTest, CounterGaugeHistogramBasics)
{
    tm::Counter &counter = tm::counter("bxt.test.counter");
    counter.add();
    counter.add(41);
    EXPECT_EQ(counter.value(), 42u);

    tm::Gauge &gauge = tm::gauge("bxt.test.gauge");
    gauge.set(2.5);
    EXPECT_DOUBLE_EQ(gauge.value(), 2.5);

    tm::Histo &histo = tm::histogram("bxt.test.histo");
    histo.add(0.5);   // rounds to 1 -> exact bucket 1
    histo.add(9.4);   // rounds to 9 -> exact bucket 9
    histo.add(-3.0);  // clamps to 0 -> exact bucket 0
    histo.record(100);
    EXPECT_EQ(histo.total(), 4u);
    EXPECT_EQ(histo.bucketCount(0), 1u);
    EXPECT_EQ(histo.bucketCount(1), 1u);
    EXPECT_EQ(histo.bucketCount(9), 1u);
    EXPECT_EQ(histo.bucketCount(tm::Histo::bucketIndexOf(100)), 1u);
    EXPECT_NEAR(histo.sum(), 110.0, 1e-9);
    EXPECT_NEAR(histo.mean(), 27.5, 1e-9);
    EXPECT_EQ(histo.min(), 0u);
    EXPECT_EQ(histo.max(), 100u);

    // Re-registering under the same name returns the same instrument.
    EXPECT_EQ(&counter, &tm::counter("bxt.test.counter"));
    EXPECT_EQ(&histo, &tm::histogram("bxt.test.histo"));
}

TEST_F(TelemetryTest, HdrBucketGeometry)
{
    using H = tm::Histo;
    // Values below one octave of sub-buckets are exact.
    for (std::uint64_t v = 0; v < H::subBuckets; ++v) {
        EXPECT_EQ(H::bucketIndexOf(v), v);
        EXPECT_EQ(H::bucketLowerBound(v), v);
        EXPECT_EQ(H::bucketWidth(v), 1u);
    }
    // Bucket bounds tile the value axis: every value lands in a bucket
    // whose [lower, lower+width) range contains it, and consecutive
    // bucket bounds are contiguous.
    for (std::uint64_t v : {32ull, 33ull, 63ull, 64ull, 100ull, 1023ull,
                            1024ull, 123456789ull, (1ull << 36) - 1}) {
        const std::size_t index = H::bucketIndexOf(v);
        EXPECT_GE(v, H::bucketLowerBound(index)) << v;
        EXPECT_LT(v, H::bucketLowerBound(index) + H::bucketWidth(index))
            << v;
    }
    for (std::size_t index = 0; index + 1 < H::numBuckets; ++index) {
        EXPECT_EQ(H::bucketLowerBound(index) + H::bucketWidth(index),
                  H::bucketLowerBound(index + 1))
            << index;
    }
    // The relative quantization error is bounded by one sub-bucket.
    for (std::uint64_t v : {100ull, 5000ull, 777777ull}) {
        const std::size_t index = H::bucketIndexOf(v);
        EXPECT_LE(static_cast<double>(H::bucketWidth(index)),
                  static_cast<double>(v) /
                      static_cast<double>(H::subBuckets) +
                      1.0);
    }
    // Oversized samples clamp into the top bucket instead of indexing
    // out of range.
    EXPECT_EQ(H::bucketIndexOf(~std::uint64_t{0}), H::numBuckets - 1);
}

TEST_F(TelemetryTest, HdrQuantilesTrackUniformSamples)
{
    tm::Histo &histo = tm::histogram("bxt.test.quantiles");
    for (std::uint64_t v = 1; v <= 10000; ++v)
        histo.record(v);
    // Log-bucketing bounds the relative error at 1/32 (~3%); allow 5%.
    EXPECT_NEAR(histo.quantile(0.50), 5000.0, 0.05 * 5000.0);
    EXPECT_NEAR(histo.quantile(0.95), 9500.0, 0.05 * 9500.0);
    EXPECT_NEAR(histo.quantile(0.99), 9900.0, 0.05 * 9900.0);
    EXPECT_NEAR(histo.quantile(0.999), 9990.0, 0.05 * 9990.0);
    // Quantiles clamp to the observed extremes.
    EXPECT_EQ(histo.quantile(0.0), 1.0);
    EXPECT_EQ(histo.quantile(1.0), 10000.0);

    tm::Histo &empty = tm::histogram("bxt.test.quantiles_empty");
    EXPECT_EQ(empty.quantile(0.5), 0.0);

    tm::Histo &single = tm::histogram("bxt.test.quantiles_single");
    single.record(42);
    EXPECT_EQ(single.quantile(0.5), 42.0);
    EXPECT_EQ(single.quantile(0.999), 42.0);
}

TEST_F(TelemetryTest, SanitizeMetricName)
{
    EXPECT_EQ(tm::sanitizeMetricName("universal3+zdr|dbi4"),
              "universal3-zdr__dbi4");
    EXPECT_EQ(tm::sanitizeMetricName("ok_name.09-A"), "ok_name.09-A");
    EXPECT_EQ(tm::sanitizeMetricName("a b/c"), "a_b_c");
}

TEST_F(TelemetryTest, CountersExactUnderContention)
{
    constexpr std::size_t iterations = 20000;
    tm::Counter &counter = tm::counter("bxt.test.contended");
    tm::Histo &histo = tm::histogram("bxt.test.contended_histo");
    ThreadPool pool(4);
    pool.run(iterations, [&](std::size_t i) {
        counter.add(1);
        histo.add(static_cast<double>(i));
    });
    EXPECT_EQ(counter.value(), iterations);
    EXPECT_EQ(histo.total(), iterations);
    std::uint64_t bucket_sum = 0;
    for (std::size_t b = 0; b < histo.buckets(); ++b)
        bucket_sum += histo.bucketCount(b);
    EXPECT_EQ(bucket_sum, iterations);
}

TEST_F(TelemetryTest, PoolMetricsRecorded)
{
    ThreadPool pool(2);
    pool.run(100, [](std::size_t) {});
    EXPECT_GE(tm::counter("bxt.pool.jobs").value(), 1u);
    EXPECT_GE(tm::counter("bxt.pool.indices").value(), 100u);
    EXPECT_EQ(tm::gauge("bxt.pool.threads").value(), 2.0);
}

TEST_F(TelemetryTest, SnapshotRoundTripsThroughParser)
{
    // Instruments registered by other tests persist (references stay
    // valid for the process lifetime), so this test uses its own names.
    tm::counter("bxt.test.roundtrip").add(7);
    tm::gauge("bxt.test.rt_gauge").set(1.5);
    tm::histogram("bxt.test.rt_histo").add(3.0);

    for (const bool pretty : {true, false}) {
        JsonValue doc;
        std::string error;
        ASSERT_TRUE(parseJson(tm::snapshotJson(pretty), doc, &error))
            << error;
        EXPECT_EQ(member(doc, "schema").number, tm::snapshotSchema);
        EXPECT_TRUE(member(doc, "enabled").boolean);
        EXPECT_EQ(member(member(doc, "counters"),
                         "bxt.test.roundtrip").number,
                  7.0);
        EXPECT_EQ(member(member(doc, "gauges"),
                         "bxt.test.rt_gauge").number,
                  1.5);
        const JsonValue &histo =
            member(member(doc, "histograms"), "bxt.test.rt_histo");
        EXPECT_EQ(member(histo, "kind").string, "hdr");
        EXPECT_EQ(member(histo, "sub_bucket_bits").number,
                  static_cast<double>(tm::Histo::subBucketBits));
        EXPECT_EQ(member(histo, "total").number, 1.0);
        EXPECT_EQ(member(histo, "min").number, 3.0);
        EXPECT_EQ(member(histo, "max").number, 3.0);
        EXPECT_EQ(member(histo, "p50").number, 3.0);
        EXPECT_EQ(member(histo, "p999").number, 3.0);
        // Sparse bucket encoding: exactly the one non-zero bucket.
        const JsonValue &buckets = member(histo, "buckets");
        ASSERT_EQ(buckets.array.size(), 1u);
        ASSERT_EQ(buckets.array[0].array.size(), 2u);
        EXPECT_EQ(buckets.array[0].array[0].number, 3.0);
        EXPECT_EQ(buckets.array[0].array[1].number, 1.0);
    }
}

TEST_F(TelemetryTest, WriteSnapshotCreatesValidFile)
{
    tm::counter("bxt.test.file").add(3);
    const std::string path =
        (std::filesystem::temp_directory_path() / "bxt_snapshot_test.json")
            .string();
    ASSERT_TRUE(tm::writeSnapshot(path));

    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    const std::string text((std::istreambuf_iterator<char>(in)),
                           std::istreambuf_iterator<char>());
    JsonValue doc;
    std::string error;
    EXPECT_TRUE(parseJson(text, doc, &error)) << error;
    EXPECT_EQ(member(member(doc, "counters"), "bxt.test.file").number,
              3.0);
    std::filesystem::remove(path);
}

TEST_F(TelemetryTest, DisabledMetricsAreZeroCostNoops)
{
    tm::setMetricsEnabled(false);

    tm::Counter &counter = tm::counter("bxt.test.off");
    counter.add(5);
    EXPECT_EQ(counter.value(), 0u);
    tm::Gauge &gauge = tm::gauge("bxt.test.off_gauge");
    gauge.set(9.0);
    EXPECT_EQ(gauge.value(), 0.0);
    tm::Histo &histo = tm::histogram("bxt.test.off_histo");
    histo.add(0.5);
    EXPECT_EQ(histo.total(), 0u);

    // Instrumented library code records nothing either.
    CodecPtr codec = makeCodec("universal3+zdr|dbi4", 4);
    evalCodecOnStream(*codec, makeStream(8), 32);
    EXPECT_EQ(tm::counter("bxt.bus.transactions").value(), 0u);
    EXPECT_EQ(tm::counter("bxt.channel.eval.streams").value(), 0u);

    // The snapshot exporter refuses to write a disabled registry...
    const std::string path =
        (std::filesystem::temp_directory_path() / "bxt_snapshot_off.json")
            .string();
    std::filesystem::remove(path);
    EXPECT_FALSE(tm::writeSnapshot(path));
    EXPECT_FALSE(std::filesystem::exists(path));

    // ...but snapshotJson still returns a valid "enabled": false doc.
    JsonValue doc;
    std::string error;
    ASSERT_TRUE(parseJson(tm::snapshotJson(), doc, &error)) << error;
    EXPECT_FALSE(member(doc, "enabled").boolean);
}

TEST_F(TelemetryTest, ScopedSpansExportAsChromeTrace)
{
    tm::setTraceEnabled(true);
    tm::clearTraceBuffer();
    {
        tm::ScopedSpan outer("outer", "test");
        tm::ScopedSpan inner(std::string("inner.dynamic"), "test");
    }
    const std::vector<tm::TraceEvent> events = tm::traceEvents();
    ASSERT_EQ(events.size(), 2u);
    // Destruction order: inner records first.
    EXPECT_EQ(events[0].name, "inner.dynamic");
    EXPECT_EQ(events[1].name, "outer");
    EXPECT_EQ(events[1].category, "test");

    const std::string path =
        (std::filesystem::temp_directory_path() / "bxt_trace_test.json")
            .string();
    ASSERT_TRUE(tm::writeTrace(path));

    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    const std::string text((std::istreambuf_iterator<char>(in)),
                           std::istreambuf_iterator<char>());
    JsonValue doc;
    std::string error;
    ASSERT_TRUE(parseJson(text, doc, &error)) << error;
    const JsonValue &trace_events = member(doc, "traceEvents");
    ASSERT_EQ(trace_events.array.size(), 2u);
    for (const JsonValue &event : trace_events.array) {
        EXPECT_EQ(member(event, "ph").string, "X");
        EXPECT_TRUE(member(event, "ts").isNumber());
        EXPECT_TRUE(member(event, "dur").isNumber());
    }
    std::filesystem::remove(path);
}

TEST_F(TelemetryTest, DisabledSpansRecordNothing)
{
    tm::clearTraceBuffer();
    {
        tm::ScopedSpan span("ignored", "test");
        EXPECT_EQ(span.elapsedUs(), 0u);
    }
    EXPECT_TRUE(tm::traceEvents().empty());
    EXPECT_FALSE(tm::writeTrace(
        (std::filesystem::temp_directory_path() / "bxt_trace_off.json")
            .string()));
}

tm::ServerSpan
makeSpan(std::uint64_t i)
{
    tm::ServerSpan span;
    span.traceId = i + 1;
    span.spanId = 2 * i + 1;
    span.startUs = 1000 + i;
    span.durUs = i % 977;
    span.phase = static_cast<tm::ServerPhase>(i % 5);
    span.opcode = 2;
    span.streamId = static_cast<std::uint16_t>(i % 5);
    span.tid = 7;
    span.txCount = static_cast<std::uint32_t>(i % 64);
    return span;
}

TEST_F(TelemetryTest, SpanRingRoundTripsInPushOrder)
{
    auto ring = std::make_unique<tm::SpanRing>();
    for (std::uint64_t i = 0; i < 100; ++i)
        ring->push(makeSpan(i));
    EXPECT_EQ(ring->pushed(), 100u);
    EXPECT_EQ(ring->dropped(), 0u);

    std::vector<tm::ServerSpan> collected;
    EXPECT_EQ(ring->drainInto(collected), 100u);
    ASSERT_EQ(collected.size(), 100u);
    for (std::uint64_t i = 0; i < 100; ++i)
        EXPECT_EQ(collected[i], makeSpan(i)) << i;

    // A second drain finds nothing new.
    EXPECT_EQ(ring->drainInto(collected), 0u);
}

TEST_F(TelemetryTest, SpanRingWraparoundDropsOldestAndCounts)
{
    constexpr std::uint64_t extra = 100;
    auto ring = std::make_unique<tm::SpanRing>();
    for (std::uint64_t i = 0; i < tm::SpanRing::capacity + extra; ++i)
        ring->push(makeSpan(i));
    EXPECT_EQ(ring->pushed(), tm::SpanRing::capacity + extra);
    EXPECT_EQ(ring->dropped(), extra);

    // The survivors are exactly the newest `capacity` spans, in order.
    std::vector<tm::ServerSpan> collected;
    EXPECT_EQ(ring->drainInto(collected), tm::SpanRing::capacity);
    ASSERT_EQ(collected.size(), tm::SpanRing::capacity);
    EXPECT_EQ(collected.front(), makeSpan(extra));
    EXPECT_EQ(collected.back(),
              makeSpan(tm::SpanRing::capacity + extra - 1));
}

TEST_F(TelemetryTest, SpanRingConcurrentDrainLosesNothing)
{
    constexpr std::uint64_t total = 200000;
    auto ring = std::make_unique<tm::SpanRing>();
    std::atomic<bool> done{false};
    std::vector<tm::ServerSpan> collected;

    std::thread producer([&] {
        for (std::uint64_t i = 0; i < total; ++i)
            ring->push(makeSpan(i));
        done.store(true, std::memory_order_release);
    });
    while (!done.load(std::memory_order_acquire))
        ring->drainInto(collected);
    ring->drainInto(collected);
    producer.join();

    // Accounting is exact even under wraparound: every span was either
    // collected or counted as dropped, and collected trace ids ascend
    // (drains preserve push order; torn slots are skipped, not mangled).
    EXPECT_EQ(collected.size() + ring->dropped(), total);
    std::uint64_t prev_id = 0;
    for (const tm::ServerSpan &span : collected) {
        EXPECT_GT(span.traceId, prev_id);
        EXPECT_EQ(span, makeSpan(span.traceId - 1));
        prev_id = span.traceId;
    }
}

TEST_F(TelemetryTest, RecordServerSpanFeedsRegistryAndCounters)
{
    for (std::uint64_t i = 0; i < 10; ++i)
        tm::recordServerSpan(makeSpan(i));
    EXPECT_EQ(tm::counter("bxt.server.spans_recorded").value(), 10u);
    EXPECT_EQ(tm::counter("bxt.server.spans_dropped").value(), 0u);
    EXPECT_GE(tm::serverSpansRecorded(), 10u);

    const std::vector<tm::ServerSpan> spans = tm::collectServerSpans();
    ASSERT_EQ(spans.size(), 10u);
    for (std::uint64_t i = 0; i < 10; ++i)
        EXPECT_EQ(spans[i], makeSpan(i));
    // Exactly-once delivery across collects.
    EXPECT_TRUE(tm::collectServerSpans().empty());
}

TEST_F(TelemetryTest, ServerSpanTraceExportsChromeJson)
{
    tm::recordServerSpan(makeSpan(3));
    tm::recordServerSpan(makeSpan(4));
    const std::string path =
        (std::filesystem::temp_directory_path() / "bxt_spans_test.json")
            .string();
    ASSERT_TRUE(tm::writeServerSpanTrace(path));

    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    const std::string text((std::istreambuf_iterator<char>(in)),
                           std::istreambuf_iterator<char>());
    JsonValue doc;
    std::string error;
    ASSERT_TRUE(parseJson(text, doc, &error)) << error;
    const JsonValue &events = member(doc, "traceEvents");
    ASSERT_EQ(events.array.size(), 2u);
    EXPECT_EQ(member(events.array[0], "name").string, "codec");
    EXPECT_EQ(member(events.array[1], "name").string, "reply");
    for (const JsonValue &event : events.array) {
        EXPECT_EQ(member(event, "ph").string, "X");
        EXPECT_EQ(member(event, "cat").string, "bxt.server");
        EXPECT_TRUE(member(event, "ts").isNumber());
        EXPECT_TRUE(member(event, "dur").isNumber());
        const JsonValue &args = member(event, "args");
        EXPECT_EQ(member(args, "trace_id").string.size(), 16u);
        EXPECT_TRUE(member(args, "span_id").isNumber());
    }
    EXPECT_EQ(member(member(doc, "otherData"), "droppedSpans").number,
              0.0);
    std::filesystem::remove(path);

    // The export accumulates already-drained spans: a second write after
    // new records contains all four.
    tm::recordServerSpan(makeSpan(5));
    tm::recordServerSpan(makeSpan(6));
    ASSERT_TRUE(tm::writeServerSpanTrace(path));
    std::ifstream again(path);
    const std::string text2((std::istreambuf_iterator<char>(again)),
                            std::istreambuf_iterator<char>());
    ASSERT_TRUE(parseJson(text2, doc, &error)) << error;
    EXPECT_EQ(member(doc, "traceEvents").array.size(), 4u);
    std::filesystem::remove(path);
}

/**
 * Concurrency acceptance (ISSUE 8 satellite): snapshotJson must stay
 * parseable and self-consistent while writer threads hammer every
 * instrument kind and the span rings. Run under ThreadSanitizer via
 * `ci.sh tsan`.
 */
TEST_F(TelemetryTest, SnapshotWhileWritersActive)
{
    constexpr std::size_t writers = 4;
    constexpr std::uint64_t perWriter = 20000;
    // Register up front so the first snapshot below already sees the
    // instruments (writer threads may not have started yet).
    tm::counter("bxt.test.snap_counter");
    tm::gauge("bxt.test.snap_gauge");
    tm::histogram("bxt.test.snap_histo");
    std::atomic<std::size_t> running{writers};
    std::vector<std::thread> threads;
    threads.reserve(writers);
    for (std::size_t t = 0; t < writers; ++t) {
        threads.emplace_back([t, &running] {
            tm::Counter &counter = tm::counter("bxt.test.snap_counter");
            tm::Gauge &gauge = tm::gauge("bxt.test.snap_gauge");
            tm::Histo &histo = tm::histogram("bxt.test.snap_histo");
            for (std::uint64_t i = 0; i < perWriter; ++i) {
                counter.add(1);
                gauge.set(static_cast<double>(i));
                histo.record(i);
                if (i % 64 == 0)
                    tm::recordServerSpan(makeSpan(t * perWriter + i));
            }
            running.fetch_sub(1, std::memory_order_release);
        });
    }

    std::size_t parses = 0;
    while (running.load(std::memory_order_acquire) > 0) {
        JsonValue doc;
        std::string error;
        ASSERT_TRUE(parseJson(tm::snapshotJson(false), doc, &error))
            << error;
        const JsonValue &histo =
            member(member(doc, "histograms"), "bxt.test.snap_histo");
        // total is read before the buckets, so the bucket sum can only
        // run ahead of it, never behind.
        double bucket_sum = 0.0;
        for (const JsonValue &pair : member(histo, "buckets").array)
            bucket_sum += pair.array[1].number;
        EXPECT_GE(bucket_sum + 0.5, member(histo, "total").number);
        ++parses;
        (void)tm::collectServerSpans(); // Concurrent drain, too.
    }
    for (std::thread &thread : threads)
        thread.join();
    EXPECT_GT(parses, 0u);
    EXPECT_EQ(tm::counter("bxt.test.snap_counter").value(),
              writers * perWriter);
    EXPECT_EQ(tm::histogram("bxt.test.snap_histo").total(),
              writers * perWriter);
}

/**
 * Acceptance criterion (ISSUE 3): per-stage ones-removed counters of a
 * `universal3+zdr|dbi4` run must telescope against the raw baseline to
 * the exact total Bus ones count, cross-checked against the PR 2
 * bit-level reference bus.
 */
TEST_F(TelemetryTest, StageAttributionTelescopesToRefBusOnes)
{
    const std::string spec = "universal3+zdr|dbi4";
    constexpr unsigned data_wires = 32;
    constexpr double idle_fraction = 0.3;
    const std::vector<Transaction> stream = makeStream(256);

    // Reference pass with metrics off: feed each encoding through the
    // bit-level reference bus (this also keeps the reference encodes out
    // of the stage counters measured below).
    tm::setMetricsEnabled(false);
    std::uint64_t raw_ones = 0;
    std::uint64_t ref_ones = 0;
    {
        CodecPtr codec = makeCodec(spec, data_wires / 8);
        verify::RefBus ref(data_wires, codec->metaWiresPerBeat(),
                           idle_fraction);
        for (const Transaction &tx : stream) {
            raw_ones += tx.ones();
            const Encoded enc = codec->encode(tx);
            ref.transmit({enc.payload.data(),
                          enc.payload.data() + enc.payload.size()},
                         enc.meta, enc.metaWiresPerBeat);
        }
        ref_ones = ref.stats().ones();
    }

    // Instrumented pass: same stream through the production eval path.
    tm::resetForTest();
    tm::setMetricsEnabled(true);
    {
        CodecPtr codec = makeCodec(spec, data_wires / 8);
        evalCodecOnStream(*codec, stream, data_wires, idle_fraction);
    }

    const std::string prefix = "bxt.codec.universal3-zdr__dbi4.";
    const std::uint64_t in0 =
        tm::counter(prefix + "stage0.universal3-zdr.ones_in").value();
    const std::uint64_t out0 =
        tm::counter(prefix + "stage0.universal3-zdr.ones_out").value();
    const std::uint64_t in1 =
        tm::counter(prefix + "stage1.dbi4.ones_in").value();
    const std::uint64_t out1 =
        tm::counter(prefix + "stage1.dbi4.ones_out").value();
    ASSERT_GT(in0, 0u);

    // The stream's raw ones entered stage 0.
    EXPECT_EQ(in0, raw_ones);
    EXPECT_EQ(tm::counter("bxt.channel.eval.raw_ones").value(), raw_ones);

    // Removals telescope: raw - sum(in - out) == bus-visible ones.
    const std::uint64_t removed = (in0 - out0) + (in1 - out1);
    const std::uint64_t bus_ones =
        tm::counter("bxt.bus.data_ones").value() +
        tm::counter("bxt.bus.meta_ones").value();
    EXPECT_EQ(raw_ones - removed, bus_ones);

    // And the production Bus counters match the bit-level reference.
    EXPECT_EQ(bus_ones, ref_ones);
    EXPECT_EQ(tm::counter("bxt.channel.eval.encoded_ones").value(),
              ref_ones);
}

// ---------------------------------------------------------------------
// Instantiable registries + merge (the sharded-server substrate)

TEST_F(TelemetryTest, ScopedRegistryRedirectsFreeFunctions)
{
    tm::Registry shard;
    tm::counter("bxt.test.scoped").add(1); // Default registry.
    {
        tm::ScopedRegistry scoped(shard);
        EXPECT_EQ(&tm::currentRegistry(), &shard);
        tm::counter("bxt.test.scoped").add(10);
        {
            tm::Registry inner;
            tm::ScopedRegistry nested(inner);
            tm::counter("bxt.test.scoped").add(100);
            EXPECT_EQ(inner.counter("bxt.test.scoped").value(), 100u);
        }
        // Nested scope restored the outer binding.
        EXPECT_EQ(&tm::currentRegistry(), &shard);
    }
    EXPECT_EQ(&tm::currentRegistry(), &tm::defaultRegistry());
    EXPECT_EQ(shard.counter("bxt.test.scoped").value(), 10u);
    EXPECT_EQ(tm::counter("bxt.test.scoped").value(), 1u);
}

TEST_F(TelemetryTest, RegistryMergeSumsCountersAndGauges)
{
    tm::Registry a;
    tm::Registry b;
    a.counter("bxt.test.c").add(7);
    b.counter("bxt.test.c").add(5);
    b.counter("bxt.test.only_b").add(3);
    a.gauge("bxt.test.g").set(1.5);
    b.gauge("bxt.test.g").set(2.0);

    tm::Registry merged;
    merged.mergeFrom(a);
    merged.mergeFrom(b);
    EXPECT_EQ(merged.counter("bxt.test.c").value(), 12u);
    EXPECT_EQ(merged.counter("bxt.test.only_b").value(), 3u);
    // Gauge merge is additive: per-shard queue depths sum to the fleet
    // depth.
    EXPECT_DOUBLE_EQ(merged.gauge("bxt.test.g").value(), 3.5);
}

TEST_F(TelemetryTest, RegistryMergeRenameBreaksOutAndSkips)
{
    tm::Registry shard;
    shard.counter("bxt.server.requests").add(9);
    shard.counter("bxt.other.requests").add(4);

    tm::Registry merged;
    merged.mergeFrom(shard, [](const std::string &name) {
        if (name == "bxt.server.requests")
            return std::string("bxt.server.shard.3.requests");
        return std::string(); // Skip everything else.
    });
    EXPECT_EQ(merged.counter("bxt.server.shard.3.requests").value(), 9u);
    bool saw_other = false;
    merged.forEachCounter([&](const tm::Counter &counter) {
        saw_other |= counter.name() == "bxt.other.requests";
    });
    EXPECT_FALSE(saw_other);
}

TEST_F(TelemetryTest, HistogramMergeMatchesSingleRegistryOracle)
{
    // The pinning test for the sharded quantile story: recording each
    // sample into one of four shard histograms and bucket-merging must
    // yield the exact p50/p99 (and count/sum/min/max) of recording all
    // samples into one histogram.
    tm::Registry oracle_reg;
    tm::Histo &oracle = oracle_reg.histogram("bxt.test.lat");
    std::vector<tm::Registry> shards(4);
    Rng rng(0x5eed);
    for (std::size_t i = 0; i < 10'000; ++i) {
        // Log-uniform-ish latencies: 1 us .. ~1 s, heavy low tail.
        const double sample = std::exp(
            rng.nextDouble() * 13.8); // e^13.8 ~= 1e6
        oracle.add(sample);
        shards[i % shards.size()]
            .histogram("bxt.test.lat")
            .add(sample);
    }

    tm::Registry merged_reg;
    for (tm::Registry &shard : shards)
        merged_reg.mergeFrom(shard);
    tm::Histo &merged = merged_reg.histogram("bxt.test.lat");

    EXPECT_EQ(merged.total(), oracle.total());
    EXPECT_DOUBLE_EQ(merged.sum(), oracle.sum());
    EXPECT_EQ(merged.min(), oracle.min());
    EXPECT_EQ(merged.max(), oracle.max());
    for (const double q : {0.5, 0.9, 0.99, 0.999}) {
        EXPECT_DOUBLE_EQ(merged.quantile(q), oracle.quantile(q))
            << "q=" << q;
    }
    for (std::size_t b = 0; b < tm::Histo::numBuckets; ++b) {
        ASSERT_EQ(merged.bucketCount(b), oracle.bucketCount(b))
            << "bucket " << b;
    }
}

TEST_F(TelemetryTest, SnapshotJsonOfExplicitRegistry)
{
    tm::Registry reg;
    reg.counter("bxt.test.snap").add(2);
    reg.histogram("bxt.test.h").record(5);
    const std::string json = tm::snapshotJson(reg, false);
    JsonValue doc;
    std::string err;
    ASSERT_TRUE(parseJson(json, doc, &err)) << err;
    EXPECT_DOUBLE_EQ(member(member(doc, "counters"), "bxt.test.snap")
                         .number,
                     2.0);
    // The default registry's content must not leak into an explicit
    // registry's snapshot.
    tm::counter("bxt.test.default_only").add(1);
    const std::string json2 = tm::snapshotJson(reg, false);
    EXPECT_EQ(json2.find("bxt.test.default_only"), std::string::npos);
}

} // namespace
} // namespace bxt
