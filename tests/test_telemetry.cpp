/**
 * @file
 * Telemetry subsystem tests: instrument correctness under thread-pool
 * contention, snapshot schema round-trip, Chrome trace export, the
 * zero-cost-when-off guard, and the per-stage attribution acceptance
 * check — the pipeline stage counters of a `universal3+zdr|dbi4` run
 * must telescope to the exact Bus ones total, cross-checked against the
 * bit-level reference bus.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "channel/channel_eval.h"
#include "common/json.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "core/codec_factory.h"
#include "telemetry/metrics.h"
#include "telemetry/snapshot.h"
#include "telemetry/trace.h"
#include "verify/reference_bus.h"
#include "workloads/patterns.h"

namespace bxt {
namespace {

namespace tm = bxt::telemetry;

/** Every test starts from a zeroed, enabled registry and leaves both the
 *  metrics gate and the trace gate off. */
class TelemetryTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        tm::resetForTest();
        tm::setMetricsEnabled(true);
    }

    void TearDown() override
    {
        tm::setMetricsEnabled(false);
        tm::setTraceEnabled(false);
        tm::resetForTest();
    }
};

/** Deterministic mixed-content 32-byte transaction stream. */
std::vector<Transaction>
makeStream(std::size_t count)
{
    PatternPtr pattern = makeSoaFloatPattern(1.0e3, 1.0e-3, 7);
    Rng rng(11);
    std::vector<Transaction> stream;
    stream.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        Transaction tx(32);
        pattern->fill(rng, tx.bytes());
        stream.push_back(tx);
    }
    return stream;
}

const JsonValue &
member(const JsonValue &object, const std::string &key)
{
    const JsonValue *value = object.find(key);
    EXPECT_NE(value, nullptr) << "missing member " << key;
    static const JsonValue null_value;
    return value != nullptr ? *value : null_value;
}

TEST_F(TelemetryTest, CounterGaugeHistogramBasics)
{
    tm::Counter &counter = tm::counter("bxt.test.counter");
    counter.add();
    counter.add(41);
    EXPECT_EQ(counter.value(), 42u);

    tm::Gauge &gauge = tm::gauge("bxt.test.gauge");
    gauge.set(2.5);
    EXPECT_DOUBLE_EQ(gauge.value(), 2.5);

    tm::Histo &histo = tm::histogram("bxt.test.histo", 0.0, 10.0, 10);
    histo.add(0.5);   // bucket 0
    histo.add(9.5);   // bucket 9
    histo.add(-3.0);  // clamped into bucket 0
    histo.add(100.0); // clamped into bucket 9
    EXPECT_EQ(histo.total(), 4u);
    EXPECT_EQ(histo.bucketCount(0), 2u);
    EXPECT_EQ(histo.bucketCount(9), 2u);
    EXPECT_NEAR(histo.sum(), 107.0, 1e-3);
    EXPECT_NEAR(histo.mean(), 26.75, 1e-3);

    // Re-registering under the same name returns the same instrument.
    EXPECT_EQ(&counter, &tm::counter("bxt.test.counter"));
    EXPECT_EQ(&histo, &tm::histogram("bxt.test.histo", 0.0, 99.0, 3));
}

TEST_F(TelemetryTest, SanitizeMetricName)
{
    EXPECT_EQ(tm::sanitizeMetricName("universal3+zdr|dbi4"),
              "universal3-zdr__dbi4");
    EXPECT_EQ(tm::sanitizeMetricName("ok_name.09-A"), "ok_name.09-A");
    EXPECT_EQ(tm::sanitizeMetricName("a b/c"), "a_b_c");
}

TEST_F(TelemetryTest, CountersExactUnderContention)
{
    constexpr std::size_t iterations = 20000;
    tm::Counter &counter = tm::counter("bxt.test.contended");
    tm::Histo &histo = tm::histogram("bxt.test.contended_histo", 0.0,
                                     1.0e6, 4);
    ThreadPool pool(4);
    pool.run(iterations, [&](std::size_t i) {
        counter.add(1);
        histo.add(static_cast<double>(i));
    });
    EXPECT_EQ(counter.value(), iterations);
    EXPECT_EQ(histo.total(), iterations);
    std::uint64_t bucket_sum = 0;
    for (std::size_t b = 0; b < histo.buckets(); ++b)
        bucket_sum += histo.bucketCount(b);
    EXPECT_EQ(bucket_sum, iterations);
}

TEST_F(TelemetryTest, PoolMetricsRecorded)
{
    ThreadPool pool(2);
    pool.run(100, [](std::size_t) {});
    EXPECT_GE(tm::counter("bxt.pool.jobs").value(), 1u);
    EXPECT_GE(tm::counter("bxt.pool.indices").value(), 100u);
    EXPECT_EQ(tm::gauge("bxt.pool.threads").value(), 2.0);
}

TEST_F(TelemetryTest, SnapshotRoundTripsThroughParser)
{
    // Instruments registered by other tests persist (references stay
    // valid for the process lifetime), so this test uses its own names.
    tm::counter("bxt.test.roundtrip").add(7);
    tm::gauge("bxt.test.rt_gauge").set(1.5);
    tm::histogram("bxt.test.rt_histo", 0.0, 4.0, 4).add(3.0);

    for (const bool pretty : {true, false}) {
        JsonValue doc;
        std::string error;
        ASSERT_TRUE(parseJson(tm::snapshotJson(pretty), doc, &error))
            << error;
        EXPECT_EQ(member(doc, "schema").number, tm::snapshotSchema);
        EXPECT_TRUE(member(doc, "enabled").boolean);
        EXPECT_EQ(member(member(doc, "counters"),
                         "bxt.test.roundtrip").number,
                  7.0);
        EXPECT_EQ(member(member(doc, "gauges"),
                         "bxt.test.rt_gauge").number,
                  1.5);
        const JsonValue &histo =
            member(member(doc, "histograms"), "bxt.test.rt_histo");
        EXPECT_EQ(member(histo, "total").number, 1.0);
        EXPECT_EQ(member(histo, "counts").array.size(), 4u);
    }
}

TEST_F(TelemetryTest, WriteSnapshotCreatesValidFile)
{
    tm::counter("bxt.test.file").add(3);
    const std::string path =
        (std::filesystem::temp_directory_path() / "bxt_snapshot_test.json")
            .string();
    ASSERT_TRUE(tm::writeSnapshot(path));

    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    const std::string text((std::istreambuf_iterator<char>(in)),
                           std::istreambuf_iterator<char>());
    JsonValue doc;
    std::string error;
    EXPECT_TRUE(parseJson(text, doc, &error)) << error;
    EXPECT_EQ(member(member(doc, "counters"), "bxt.test.file").number,
              3.0);
    std::filesystem::remove(path);
}

TEST_F(TelemetryTest, DisabledMetricsAreZeroCostNoops)
{
    tm::setMetricsEnabled(false);

    tm::Counter &counter = tm::counter("bxt.test.off");
    counter.add(5);
    EXPECT_EQ(counter.value(), 0u);
    tm::Gauge &gauge = tm::gauge("bxt.test.off_gauge");
    gauge.set(9.0);
    EXPECT_EQ(gauge.value(), 0.0);
    tm::Histo &histo = tm::histogram("bxt.test.off_histo", 0.0, 1.0, 2);
    histo.add(0.5);
    EXPECT_EQ(histo.total(), 0u);

    // Instrumented library code records nothing either.
    CodecPtr codec = makeCodec("universal3+zdr|dbi4", 4);
    evalCodecOnStream(*codec, makeStream(8), 32);
    EXPECT_EQ(tm::counter("bxt.bus.transactions").value(), 0u);
    EXPECT_EQ(tm::counter("bxt.channel.eval.streams").value(), 0u);

    // The snapshot exporter refuses to write a disabled registry...
    const std::string path =
        (std::filesystem::temp_directory_path() / "bxt_snapshot_off.json")
            .string();
    std::filesystem::remove(path);
    EXPECT_FALSE(tm::writeSnapshot(path));
    EXPECT_FALSE(std::filesystem::exists(path));

    // ...but snapshotJson still returns a valid "enabled": false doc.
    JsonValue doc;
    std::string error;
    ASSERT_TRUE(parseJson(tm::snapshotJson(), doc, &error)) << error;
    EXPECT_FALSE(member(doc, "enabled").boolean);
}

TEST_F(TelemetryTest, ScopedSpansExportAsChromeTrace)
{
    tm::setTraceEnabled(true);
    tm::clearTraceBuffer();
    {
        tm::ScopedSpan outer("outer", "test");
        tm::ScopedSpan inner(std::string("inner.dynamic"), "test");
    }
    const std::vector<tm::TraceEvent> events = tm::traceEvents();
    ASSERT_EQ(events.size(), 2u);
    // Destruction order: inner records first.
    EXPECT_EQ(events[0].name, "inner.dynamic");
    EXPECT_EQ(events[1].name, "outer");
    EXPECT_EQ(events[1].category, "test");

    const std::string path =
        (std::filesystem::temp_directory_path() / "bxt_trace_test.json")
            .string();
    ASSERT_TRUE(tm::writeTrace(path));

    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    const std::string text((std::istreambuf_iterator<char>(in)),
                           std::istreambuf_iterator<char>());
    JsonValue doc;
    std::string error;
    ASSERT_TRUE(parseJson(text, doc, &error)) << error;
    const JsonValue &trace_events = member(doc, "traceEvents");
    ASSERT_EQ(trace_events.array.size(), 2u);
    for (const JsonValue &event : trace_events.array) {
        EXPECT_EQ(member(event, "ph").string, "X");
        EXPECT_TRUE(member(event, "ts").isNumber());
        EXPECT_TRUE(member(event, "dur").isNumber());
    }
    std::filesystem::remove(path);
}

TEST_F(TelemetryTest, DisabledSpansRecordNothing)
{
    tm::clearTraceBuffer();
    {
        tm::ScopedSpan span("ignored", "test");
        EXPECT_EQ(span.elapsedUs(), 0u);
    }
    EXPECT_TRUE(tm::traceEvents().empty());
    EXPECT_FALSE(tm::writeTrace(
        (std::filesystem::temp_directory_path() / "bxt_trace_off.json")
            .string()));
}

/**
 * Acceptance criterion (ISSUE 3): per-stage ones-removed counters of a
 * `universal3+zdr|dbi4` run must telescope against the raw baseline to
 * the exact total Bus ones count, cross-checked against the PR 2
 * bit-level reference bus.
 */
TEST_F(TelemetryTest, StageAttributionTelescopesToRefBusOnes)
{
    const std::string spec = "universal3+zdr|dbi4";
    constexpr unsigned data_wires = 32;
    constexpr double idle_fraction = 0.3;
    const std::vector<Transaction> stream = makeStream(256);

    // Reference pass with metrics off: feed each encoding through the
    // bit-level reference bus (this also keeps the reference encodes out
    // of the stage counters measured below).
    tm::setMetricsEnabled(false);
    std::uint64_t raw_ones = 0;
    std::uint64_t ref_ones = 0;
    {
        CodecPtr codec = makeCodec(spec, data_wires / 8);
        verify::RefBus ref(data_wires, codec->metaWiresPerBeat(),
                           idle_fraction);
        for (const Transaction &tx : stream) {
            raw_ones += tx.ones();
            const Encoded enc = codec->encode(tx);
            ref.transmit({enc.payload.data(),
                          enc.payload.data() + enc.payload.size()},
                         enc.meta, enc.metaWiresPerBeat);
        }
        ref_ones = ref.stats().ones();
    }

    // Instrumented pass: same stream through the production eval path.
    tm::resetForTest();
    tm::setMetricsEnabled(true);
    {
        CodecPtr codec = makeCodec(spec, data_wires / 8);
        evalCodecOnStream(*codec, stream, data_wires, idle_fraction);
    }

    const std::string prefix = "bxt.codec.universal3-zdr__dbi4.";
    const std::uint64_t in0 =
        tm::counter(prefix + "stage0.universal3-zdr.ones_in").value();
    const std::uint64_t out0 =
        tm::counter(prefix + "stage0.universal3-zdr.ones_out").value();
    const std::uint64_t in1 =
        tm::counter(prefix + "stage1.dbi4.ones_in").value();
    const std::uint64_t out1 =
        tm::counter(prefix + "stage1.dbi4.ones_out").value();
    ASSERT_GT(in0, 0u);

    // The stream's raw ones entered stage 0.
    EXPECT_EQ(in0, raw_ones);
    EXPECT_EQ(tm::counter("bxt.channel.eval.raw_ones").value(), raw_ones);

    // Removals telescope: raw - sum(in - out) == bus-visible ones.
    const std::uint64_t removed = (in0 - out0) + (in1 - out1);
    const std::uint64_t bus_ones =
        tm::counter("bxt.bus.data_ones").value() +
        tm::counter("bxt.bus.meta_ones").value();
    EXPECT_EQ(raw_ones - removed, bus_ones);

    // And the production Bus counters match the bit-level reference.
    EXPECT_EQ(bus_ones, ref_ones);
    EXPECT_EQ(tm::counter("bxt.channel.eval.encoded_ones").value(),
              ref_ones);
}

} // namespace
} // namespace bxt
