/**
 * @file
 * Unit tests for the .bxtrace binary trace file format.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <string>

#include "common/rng.h"
#include "workloads/trace.h"

namespace bxt {
namespace {

std::string
tempPath(const char *name)
{
    return std::string(::testing::TempDir()) + "/" + name;
}

Trace
makeTrace(std::size_t count, std::size_t tx_bytes)
{
    Trace trace;
    trace.name = "unit-test";
    Rng rng(7);
    for (std::size_t i = 0; i < count; ++i) {
        Transaction tx(tx_bytes);
        for (std::size_t off = 0; off < tx_bytes; off += 8)
            tx.setWord64(off, rng.next64());
        trace.txs.push_back(tx);
    }
    return trace;
}

TEST(TraceIo, SaveLoadRoundTrip)
{
    const Trace original = makeTrace(50, 32);
    const std::string path = tempPath("roundtrip.bxtrace");
    ASSERT_TRUE(saveTrace(original, path));

    const Trace loaded = loadTrace(path);
    EXPECT_EQ(loaded.name, original.name);
    ASSERT_EQ(loaded.txs.size(), original.txs.size());
    for (std::size_t i = 0; i < loaded.txs.size(); ++i)
        EXPECT_EQ(loaded.txs[i], original.txs[i]);
    std::remove(path.c_str());
}

TEST(TraceIo, SupportsCpuSizedTransactions)
{
    const Trace original = makeTrace(10, 64);
    const std::string path = tempPath("cpu.bxtrace");
    ASSERT_TRUE(saveTrace(original, path));
    const Trace loaded = loadTrace(path);
    EXPECT_EQ(loaded.txBytes(), 64u);
    std::remove(path.c_str());
}

TEST(TraceIo, EmptyTrace)
{
    Trace empty;
    empty.name = "empty";
    const std::string path = tempPath("empty.bxtrace");
    ASSERT_TRUE(saveTrace(empty, path));
    const Trace loaded = loadTrace(path);
    EXPECT_EQ(loaded.name, "empty");
    EXPECT_TRUE(loaded.txs.empty());
    EXPECT_EQ(loaded.txBytes(), 0u);
    std::remove(path.c_str());
}

TEST(TraceIo, MissingFileReturnsEmpty)
{
    const Trace loaded = loadTrace(tempPath("does-not-exist.bxtrace"));
    EXPECT_TRUE(loaded.name.empty());
    EXPECT_TRUE(loaded.txs.empty());
}

TEST(TraceIo, SaveToUnwritablePathFails)
{
    EXPECT_FALSE(saveTrace(makeTrace(1, 32), "/nonexistent-dir/x.bxtrace"));
}

TEST(TraceIoDeath, RejectsCorruptMagic)
{
    const std::string path = tempPath("corrupt.bxtrace");
    std::FILE *f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("NOT A TRACE FILE AT ALL", f);
    std::fclose(f);
    EXPECT_EXIT(loadTrace(path), testing::ExitedWithCode(1), "bad magic");
    std::remove(path.c_str());
}

TEST(TraceIoDeath, RejectsTruncatedPayload)
{
    const Trace original = makeTrace(8, 32);
    const std::string path = tempPath("truncated.bxtrace");
    ASSERT_TRUE(saveTrace(original, path));
    // Chop the file short.
    std::FILE *f = std::fopen(path.c_str(), "rb+");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 0, SEEK_END);
    const long size = std::ftell(f);
    std::fclose(f);
    ASSERT_EQ(truncate(path.c_str(), size - 16), 0);
    EXPECT_EXIT(loadTrace(path), testing::ExitedWithCode(1), "truncated");
    std::remove(path.c_str());
}

} // namespace
} // namespace bxt
