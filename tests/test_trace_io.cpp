/**
 * @file
 * Unit tests for the .bxtrace binary trace file format.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <string>

#include "common/rng.h"
#include "workloads/trace.h"

namespace bxt {
namespace {

std::string
tempPath(const char *name)
{
    return std::string(::testing::TempDir()) + "/" + name;
}

Trace
makeTrace(std::size_t count, std::size_t tx_bytes)
{
    Trace trace;
    trace.name = "unit-test";
    Rng rng(7);
    for (std::size_t i = 0; i < count; ++i) {
        Transaction tx(tx_bytes);
        for (std::size_t off = 0; off < tx_bytes; off += 8)
            tx.setWord64(off, rng.next64());
        trace.txs.push_back(tx);
    }
    return trace;
}

TEST(TraceIo, SaveLoadRoundTrip)
{
    const Trace original = makeTrace(50, 32);
    const std::string path = tempPath("roundtrip.bxtrace");
    ASSERT_TRUE(saveTrace(original, path));

    const Trace loaded = loadTrace(path);
    EXPECT_EQ(loaded.name, original.name);
    ASSERT_EQ(loaded.txs.size(), original.txs.size());
    for (std::size_t i = 0; i < loaded.txs.size(); ++i)
        EXPECT_EQ(loaded.txs[i], original.txs[i]);
    std::remove(path.c_str());
}

TEST(TraceIo, SupportsCpuSizedTransactions)
{
    const Trace original = makeTrace(10, 64);
    const std::string path = tempPath("cpu.bxtrace");
    ASSERT_TRUE(saveTrace(original, path));
    const Trace loaded = loadTrace(path);
    EXPECT_EQ(loaded.txBytes(), 64u);
    std::remove(path.c_str());
}

TEST(TraceIo, EmptyTrace)
{
    Trace empty;
    empty.name = "empty";
    const std::string path = tempPath("empty.bxtrace");
    ASSERT_TRUE(saveTrace(empty, path));
    const Trace loaded = loadTrace(path);
    EXPECT_EQ(loaded.name, "empty");
    EXPECT_TRUE(loaded.txs.empty());
    EXPECT_EQ(loaded.txBytes(), 0u);
    std::remove(path.c_str());
}

TEST(TraceIo, MissingFileReturnsEmpty)
{
    const Trace loaded = loadTrace(tempPath("does-not-exist.bxtrace"));
    EXPECT_TRUE(loaded.name.empty());
    EXPECT_TRUE(loaded.txs.empty());
}

TEST(TraceIo, SaveToUnwritablePathFails)
{
    EXPECT_FALSE(saveTrace(makeTrace(1, 32), "/nonexistent-dir/x.bxtrace"));
}

TEST(TraceIoDeath, RejectsCorruptMagic)
{
    const std::string path = tempPath("corrupt.bxtrace");
    std::FILE *f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("NOT A TRACE FILE AT ALL", f);
    std::fclose(f);
    EXPECT_EXIT(loadTrace(path), testing::ExitedWithCode(1), "bad magic");
    std::remove(path.c_str());
}

TEST(TraceIoDeath, RejectsTruncatedPayload)
{
    const Trace original = makeTrace(8, 32);
    const std::string path = tempPath("truncated.bxtrace");
    ASSERT_TRUE(saveTrace(original, path));
    // Chop the file short: the header-vs-file-size validation catches the
    // mismatch before any record is read.
    std::FILE *f = std::fopen(path.c_str(), "rb+");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 0, SEEK_END);
    const long size = std::ftell(f);
    std::fclose(f);
    ASSERT_EQ(truncate(path.c_str(), size - 16), 0);
    EXPECT_EXIT(loadTrace(path), testing::ExitedWithCode(1),
                "count exceeds file size");
    std::remove(path.c_str());
}

/** Overwrite @p n bytes at @p offset of the file at @p path. */
void
patchFile(const std::string &path, long offset, const void *bytes,
          std::size_t n)
{
    std::FILE *f = std::fopen(path.c_str(), "rb+");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fseek(f, offset, SEEK_SET), 0);
    ASSERT_EQ(std::fwrite(bytes, 1, n, f), n);
    std::fclose(f);
}

TEST(TraceIoDeath, RejectsEmptyFile)
{
    const std::string path = tempPath("zero-bytes.bxtrace");
    std::FILE *f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fclose(f);
    EXPECT_EXIT(loadTrace(path), testing::ExitedWithCode(1), "bad magic");
    std::remove(path.c_str());
}

TEST(TraceIoDeath, RejectsTruncatedHeader)
{
    // Magic and version only, cut before the size/count/name fields.
    const std::string path = tempPath("short-header.bxtrace");
    std::FILE *f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    const char magic_and_version[8] = {'B', 'X', 'T', 'R', 1, 0, 0, 0};
    ASSERT_EQ(std::fwrite(magic_and_version, 1, 8, f), 8u);
    std::fclose(f);
    EXPECT_EXIT(loadTrace(path), testing::ExitedWithCode(1),
                "truncated header");
    std::remove(path.c_str());
}

TEST(TraceIoDeath, RejectsOversizedCountField)
{
    // A count field claiming ~10^18 transactions must die with a
    // diagnostic, not attempt the allocation. Count lives at offset 12.
    const std::string path = tempPath("huge-count.bxtrace");
    ASSERT_TRUE(saveTrace(makeTrace(4, 32), path));
    const std::uint64_t huge = 0x0de0b6b3a7640000ull;
    patchFile(path, 12, &huge, sizeof(huge));
    EXPECT_EXIT(loadTrace(path), testing::ExitedWithCode(1),
                "count exceeds file size");
    std::remove(path.c_str());
}

TEST(TraceIoDeath, RejectsOversizedNameLength)
{
    // A 4 GiB name length in a tiny file. Name length lives at offset 20.
    const std::string path = tempPath("huge-name.bxtrace");
    ASSERT_TRUE(saveTrace(makeTrace(4, 32), path));
    const std::uint32_t huge = 0xffffffffu;
    patchFile(path, 20, &huge, sizeof(huge));
    EXPECT_EXIT(loadTrace(path), testing::ExitedWithCode(1),
                "oversized name length");
    std::remove(path.c_str());
}

TEST(TraceIo, SaveLeavesNoTemporaryBehind)
{
    const std::string path = tempPath("atomic.bxtrace");
    ASSERT_TRUE(saveTrace(makeTrace(4, 32), path));
    std::FILE *tmp = std::fopen((path + ".tmp").c_str(), "rb");
    EXPECT_EQ(tmp, nullptr) << "temporary survived a successful save";
    if (tmp != nullptr)
        std::fclose(tmp);
    std::remove(path.c_str());
}

TEST(TraceIo, FailedSaveLeavesOldFileIntact)
{
    // Overwriting an existing trace with an unsaveable one (mixed
    // transaction sizes) must leave the original readable: the write
    // goes to the .tmp sibling and never reaches the target.
    const std::string path = tempPath("preserved.bxtrace");
    ASSERT_TRUE(saveTrace(makeTrace(3, 32), path));

    Trace mixed = makeTrace(2, 32);
    mixed.txs.push_back(Transaction(64));
    EXPECT_FALSE(saveTrace(mixed, path));

    Trace still_there;
    std::string err;
    ASSERT_TRUE(tryLoadTrace(path, still_there, err)) << err;
    EXPECT_EQ(still_there.txs.size(), 3u);
    std::remove(path.c_str());
}

TEST(TraceIo, TryLoadReportsMissingFile)
{
    Trace out;
    std::string err;
    EXPECT_FALSE(tryLoadTrace(tempPath("nope.bxtrace"), out, err));
    EXPECT_NE(err.find("cannot open"), std::string::npos) << err;
    EXPECT_TRUE(out.txs.empty());
}

TEST(TraceIo, TryLoadReportsMalformedContentWithoutDying)
{
    const std::string path = tempPath("try-corrupt.bxtrace");
    std::FILE *f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("NOT A TRACE FILE AT ALL", f);
    std::fclose(f);

    Trace out;
    std::string err;
    EXPECT_FALSE(tryLoadTrace(path, out, err));
    EXPECT_NE(err.find("bad magic"), std::string::npos) << err;
    EXPECT_TRUE(out.txs.empty());
    std::remove(path.c_str());
}

TEST(TraceIo, TryLoadRoundTrips)
{
    const Trace original = makeTrace(6, 32);
    const std::string path = tempPath("try-ok.bxtrace");
    ASSERT_TRUE(saveTrace(original, path));

    Trace out;
    std::string err;
    ASSERT_TRUE(tryLoadTrace(path, out, err)) << err;
    EXPECT_EQ(out.name, original.name);
    ASSERT_EQ(out.txs.size(), original.txs.size());
    for (std::size_t i = 0; i < out.txs.size(); ++i)
        EXPECT_EQ(out.txs[i], original.txs[i]);
    std::remove(path.c_str());
}

TEST(TraceIoDeath, RejectsNonPowerOfTwoTransactionSize)
{
    // tx_bytes = 24 passes a naive range check but is not a Transaction
    // size; it must be a fatal() user error, not an assert. Offset 8.
    const std::string path = tempPath("bad-size.bxtrace");
    ASSERT_TRUE(saveTrace(makeTrace(4, 32), path));
    const std::uint32_t bad = 24;
    patchFile(path, 8, &bad, sizeof(bad));
    EXPECT_EXIT(loadTrace(path), testing::ExitedWithCode(1),
                "bad transaction size");
    std::remove(path.c_str());
}

} // namespace
} // namespace bxt
