/**
 * @file
 * Unit tests for core/transaction.h.
 */

#include <gtest/gtest.h>

#include "core/transaction.h"

namespace bxt {
namespace {

TEST(Transaction, DefaultIsZero32Bytes)
{
    Transaction tx;
    EXPECT_EQ(tx.size(), 32u);
    EXPECT_TRUE(tx.isZero());
    EXPECT_EQ(tx.ones(), 0u);
}

TEST(Transaction, SupportedSizes)
{
    for (std::size_t size : {8u, 16u, 32u, 64u}) {
        Transaction tx(size);
        EXPECT_EQ(tx.size(), size);
        EXPECT_TRUE(tx.isZero());
    }
}

TEST(Transaction, FromWords32MatchesPaperLayout)
{
    // Transaction0 of paper Figure 3/4.
    Transaction tx = Transaction::fromWords32(
        {0x390c9bfb, 0x390c90f9, 0x390c88f8, 0x390c88f9});
    EXPECT_EQ(tx.size(), 16u);
    EXPECT_EQ(tx.word32(0), 0x390c9bfbu);
    EXPECT_EQ(tx.word32(12), 0x390c88f9u);
    // Little-endian byte layout: byte 0 is the low byte of word 0.
    EXPECT_EQ(tx.data()[0], 0xfb);
    EXPECT_EQ(tx.data()[3], 0x39);
}

TEST(Transaction, PaperTransaction0OnesCount)
{
    // The paper counts 59 ones in transaction0's 16-byte example.
    Transaction tx = Transaction::fromWords32(
        {0x390c9bfb, 0x390c90f9, 0x390c88f8, 0x390c88f9});
    EXPECT_EQ(tx.ones(), 59u);
}

TEST(Transaction, FromWords64)
{
    Transaction tx = Transaction::fromWords64(
        {0x400ea15a5cf1bc00ull, 0x400ea15a5cf1bc04ull});
    EXPECT_EQ(tx.size(), 16u);
    EXPECT_EQ(tx.word64(0), 0x400ea15a5cf1bc00ull);
    EXPECT_EQ(tx.word64(8), 0x400ea15a5cf1bc04ull);
}

TEST(Transaction, HexRoundTrip)
{
    Transaction tx = Transaction::fromWords32(
        {0x00010203, 0x04050607, 0x08090a0b, 0x0c0d0e0f,
         0x10111213, 0x14151617, 0x18191a1b, 0x1c1d1e1f});
    const Transaction back = Transaction::fromHex(tx.toHex());
    EXPECT_EQ(back, tx);
}

TEST(Transaction, FromHexAcceptsWhitespaceAndCase)
{
    const Transaction a = Transaction::fromHex("FB9B0C39 00000000");
    EXPECT_EQ(a.size(), 8u);
    EXPECT_EQ(a.word32(0), 0x390c9bfbu);
    EXPECT_EQ(a.word32(4), 0u);
}

TEST(TransactionDeath, FromHexRejectsBadInput)
{
    EXPECT_EXIT(Transaction::fromHex("zz"),
                testing::ExitedWithCode(1), "non-hex");
    EXPECT_EXIT(Transaction::fromHex("aabb"), // 2 bytes: invalid size.
                testing::ExitedWithCode(1), "bad input length");
}

TEST(Transaction, WordWriteRead)
{
    Transaction tx(32);
    tx.setWord32(4, 0xcafebabe);
    tx.setWord64(16, 0x1122334455667788ull);
    EXPECT_EQ(tx.word32(4), 0xcafebabeu);
    EXPECT_EQ(tx.word64(16), 0x1122334455667788ull);
    EXPECT_EQ(tx.word32(0), 0u);
}

TEST(Transaction, Equality)
{
    Transaction a(16);
    Transaction b(16);
    EXPECT_TRUE(a == b);
    b.setWord32(0, 1);
    EXPECT_FALSE(a == b);
    // Different sizes are never equal.
    EXPECT_FALSE(Transaction(16) == Transaction(32));
}

TEST(Transaction, ConstructFromSpan)
{
    std::uint8_t raw[16];
    for (std::size_t i = 0; i < 16; ++i)
        raw[i] = static_cast<std::uint8_t>(i + 1);
    Transaction tx{std::span<const std::uint8_t>(raw, 16)};
    EXPECT_EQ(tx.size(), 16u);
    EXPECT_EQ(tx.data()[15], 16);
}

TEST(Transaction, OnesCountsEveryByte)
{
    Transaction tx(64);
    for (std::size_t i = 0; i < 64; ++i)
        tx.data()[i] = 0x01;
    EXPECT_EQ(tx.ones(), 64u);
}

TEST(Transaction, ToHexGroupsBy4Bytes)
{
    Transaction tx(8);
    EXPECT_EQ(tx.toHex(), "00000000 00000000");
}

} // namespace
} // namespace bxt
