/**
 * @file
 * Unit and property tests for Universal Base+XOR Transfer, including the
 * paper's Figure 8 case studies.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "common/rng.h"
#include "core/base_xor.h"
#include "core/universal_xor.h"

namespace bxt {
namespace {

TEST(UniversalXor, PaperFigure8aTwoByteSimilarElements)
{
    // 3901 3903 3905 3907 3909 390b 390d 390f (16-bit little-endian
    // elements) folds to a 2-byte base and mostly-zero XORed data:
    // 3901 | 0002 | 0004 0004 | 0008 0008 0008 0008  (Figure 8a).
    Transaction tx(16);
    const std::uint16_t elements[] = {0x3901, 0x3903, 0x3905, 0x3907,
                                      0x3909, 0x390b, 0x390d, 0x390f};
    for (std::size_t i = 0; i < 8; ++i) {
        tx.data()[2 * i] = static_cast<std::uint8_t>(elements[i] & 0xff);
        tx.data()[2 * i + 1] = static_cast<std::uint8_t>(elements[i] >> 8);
    }

    UniversalXorCodec codec(3, /*zdr=*/false);
    const Encoded enc = codec.encode(tx);

    auto half_word = [&](std::size_t index) {
        return static_cast<std::uint16_t>(
            enc.payload.data()[2 * index] |
            (enc.payload.data()[2 * index + 1] << 8));
    };
    EXPECT_EQ(half_word(0), 0x3901);
    EXPECT_EQ(half_word(1), 0x0002);
    EXPECT_EQ(half_word(2), 0x0004);
    EXPECT_EQ(half_word(3), 0x0004);
    EXPECT_EQ(half_word(4), 0x0008);
    EXPECT_EQ(half_word(5), 0x0008);
    EXPECT_EQ(half_word(6), 0x0008);
    EXPECT_EQ(half_word(7), 0x0008);
    EXPECT_EQ(codec.decode(enc), tx);
}

TEST(UniversalXor, PaperFigure8bFourByteSimilarElements)
{
    // 400ea151 400ea153 400ea155 400ea157: the 12 XORed bytes are mostly
    // zero and a 4-byte effective base remains (internally folded by the
    // final 2-byte stage, per Figure 8b).
    Transaction tx = Transaction::fromWords32(
        {0x400ea151, 0x400ea153, 0x400ea155, 0x400ea157});
    UniversalXorCodec codec(3, /*zdr=*/false);
    const Encoded enc = codec.encode(tx);

    // Stage 0 (16B halves): upper half ^ lower half = 4,4 per word.
    EXPECT_EQ(enc.payload.word32(8), 0x00000004u);
    EXPECT_EQ(enc.payload.word32(12), 0x00000004u);
    // Stage 1 (8B): word1 ^ word0 = 2.
    EXPECT_EQ(enc.payload.word32(4), 0x00000002u);
    // Stage 2 (4B): effective base with its halves XORed:
    // low 16 = a151 ^ (unchanged), high 16 = 400e ^ a151 = e15f.
    EXPECT_EQ(enc.payload.word32(0) & 0xffffu, 0xa151u);
    EXPECT_EQ(enc.payload.word32(0) >> 16, 0xe15fu);
    EXPECT_EQ(codec.decode(enc), tx);
}

TEST(UniversalXor, EffectiveBaseBytes)
{
    UniversalXorCodec three(3);
    EXPECT_EQ(three.effectiveBaseBytes(32), 4u);
    EXPECT_EQ(three.effectiveBaseBytes(16), 2u);
    // Clamped so the base never folds below 2 bytes.
    EXPECT_EQ(three.effectiveBaseBytes(8), 2u);

    UniversalXorCodec five(5);
    EXPECT_EQ(five.effectiveBaseBytes(64), 2u);
    EXPECT_EQ(five.effectiveBaseBytes(32), 2u);
}

TEST(UniversalXor, OneStageEqualsHalfXor)
{
    // A single stage is exactly a 16-byte Base+XOR on a 32-byte
    // transaction.
    Rng rng(3);
    Transaction tx(32);
    for (std::size_t off = 0; off < 32; off += 8)
        tx.setWord64(off, rng.next64());

    UniversalXorCodec universal(1, /*zdr=*/false);
    BaseXorCodec half(16, /*zdr=*/false);
    EXPECT_EQ(universal.encode(tx).payload, half.encode(tx).payload);
}

TEST(UniversalXor, ZdrHandlesInterspersedZeroElements)
{
    // A zero 4-byte element inside a non-zero half must still hit the
    // lane-wise remap (the reason ZDR is applied per 4-byte lane).
    Transaction tx = Transaction::fromWords32(
        {0x400ea95b, 0x400ea95b, 0x00000000, 0x400ea95b,
         0x400ea95b, 0x00000000, 0x400ea95b, 0x400ea95b});
    UniversalXorCodec with_zdr(3, true);
    UniversalXorCodec without_zdr(3, false);
    const Encoded a = with_zdr.encode(tx);
    const Encoded b = without_zdr.encode(tx);
    EXPECT_LT(a.ones(), b.ones());
    EXPECT_EQ(with_zdr.decode(a), tx);
    EXPECT_EQ(without_zdr.decode(b), tx);
}

TEST(UniversalXor, AllZeroTransactionStaysCheap)
{
    Transaction tx(32);
    UniversalXorCodec codec(3, true);
    const Encoded enc = codec.encode(tx);
    // 28 XORed bytes in 4-byte lanes -> 7 lanes x 1 constant bit.
    EXPECT_EQ(enc.ones(), 7u);
    EXPECT_EQ(codec.decode(enc), tx);
}

TEST(UniversalXor, NamesDescribeConfiguration)
{
    EXPECT_EQ(UniversalXorCodec(3, true).name(), "universal3+zdr");
    EXPECT_EQ(UniversalXorCodec(2, false).name(), "universal2");
}

TEST(UniversalXor, NoMetadataAndStateless)
{
    UniversalXorCodec codec(3, true);
    EXPECT_EQ(codec.metaWiresPerBeat(), 0u);
    EXPECT_TRUE(codec.stateless());
}

/** Round-trip sweep over (stages, size, zdr). */
class UniversalRoundTrip
    : public testing::TestWithParam<std::tuple<unsigned, std::size_t, bool>>
{
};

TEST_P(UniversalRoundTrip, RandomData)
{
    const auto [stages, size, zdr] = GetParam();
    UniversalXorCodec codec(stages, zdr);
    Rng rng(0x77 + stages * 17 + size);
    for (int trial = 0; trial < 500; ++trial) {
        Transaction tx(size);
        for (std::size_t off = 0; off < size; off += 8)
            tx.setWord64(off, rng.next64());
        if (trial % 3 == 0)
            tx.setWord64(0, 0);
        if (trial % 5 == 0)
            tx.setWord32(size / 2, 0);
        const Encoded enc = codec.encode(tx);
        ASSERT_EQ(codec.decode(enc), tx);
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllConfigs, UniversalRoundTrip,
    testing::Combine(testing::Values<unsigned>(1, 2, 3, 4, 5),
                     testing::Values<std::size_t>(8, 16, 32, 64),
                     testing::Bool()));

TEST(UniversalXorProperty, SimilarityAtAnyPowerOfTwoGranularityIsFound)
{
    // Fill with a repeated pattern of period 2^k bytes; universal (3
    // stages) must reduce ones substantially for every period <= 8.
    Rng rng(5);
    for (std::size_t period : {2u, 4u, 8u}) {
        Transaction tx(32);
        std::uint8_t element[8];
        for (std::size_t i = 0; i < period; ++i)
            element[i] = static_cast<std::uint8_t>(rng.next64() | 0x11);
        for (std::size_t off = 0; off < 32; ++off)
            tx.data()[off] = element[off % period];

        UniversalXorCodec codec(3, true);
        const Encoded enc = codec.encode(tx);
        // Everything but the 4-byte effective base must fold to zero...
        // except that for period < 4 the base itself folds too.
        EXPECT_LE(enc.ones(), tx.ones() / 2)
            << "period " << period << " not exploited";
        EXPECT_EQ(codec.decode(enc), tx);
    }
}

} // namespace
} // namespace bxt
