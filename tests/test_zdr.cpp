/**
 * @file
 * Unit and property tests for the Zero Data Remapping lane primitives —
 * in particular the bijectivity argument the metadata-free decode relies
 * on (paper §IV-A).
 */

#include <gtest/gtest.h>

#include <array>
#include <cstring>

#include "common/rng.h"
#include "core/zdr.h"

namespace bxt {
namespace {

using Lane4 = std::array<std::uint8_t, 4>;

Lane4
lane(std::uint32_t value)
{
    Lane4 l;
    std::memcpy(l.data(), &value, 4);
    return l;
}

std::uint32_t
value(const Lane4 &l)
{
    std::uint32_t v;
    std::memcpy(&v, l.data(), 4);
    return v;
}

std::uint32_t
zdrEncode32(std::uint32_t in, std::uint32_t base)
{
    const Lane4 i = lane(in);
    const Lane4 b = lane(base);
    Lane4 out{};
    zdrLaneEncode(out.data(), i.data(), b.data(), 4);
    return value(out);
}

std::uint32_t
zdrDecode32(std::uint32_t in, std::uint32_t base)
{
    const Lane4 i = lane(in);
    const Lane4 b = lane(base);
    Lane4 out{};
    zdrLaneDecode(out.data(), i.data(), b.data(), 4);
    return value(out);
}

TEST(ZdrLane, ZeroEncodesToConstant)
{
    // Paper Figure 5c: a zero element becomes 0x40000000.
    EXPECT_EQ(zdrEncode32(0x00000000, 0x400ea95b), 0x40000000u);
}

TEST(ZdrLane, BaseXorConstantEncodesToBase)
{
    const std::uint32_t base = 0x400ea95b;
    EXPECT_EQ(zdrEncode32(base ^ 0x40000000u, base), base);
}

TEST(ZdrLane, OrdinaryValuesXorEncode)
{
    // Paper Figure 4, element1: 0x390c90f9 ^ 0x390c9bfb = 0x00000b02.
    EXPECT_EQ(zdrEncode32(0x390c90f9, 0x390c9bfb),
              (0x390c90f9u ^ 0x390c9bfbu));
}

TEST(ZdrLane, PaperFigure5cEndToEnd)
{
    // Transaction: 400ea95b | 00000000 | 00000000 | 400ea95b, adjacent
    // bases. Encoded per the paper: base, const, const, value^0.
    EXPECT_EQ(zdrEncode32(0, 0x400ea95b), 0x40000000u);  // e1, base e0
    EXPECT_EQ(zdrEncode32(0, 0x00000000), 0x40000000u);  // e2, base e1
    EXPECT_EQ(zdrEncode32(0x400ea95b, 0), 0x400ea95bu);  // e3, base e2
}

TEST(ZdrLane, DecodeInvertsAllThreeCases)
{
    const std::uint32_t base = 0x400ea95b;
    EXPECT_EQ(zdrDecode32(0x40000000u, base), 0u);
    EXPECT_EQ(zdrDecode32(base, base), base ^ 0x40000000u);
    EXPECT_EQ(zdrDecode32(0x00000b02u, base), base ^ 0x00000b02u);
}

TEST(ZdrLane, BijectiveWhenBaseEqualsConstant)
{
    // Degenerate corner: base == C makes the two remap cases coincide on
    // input 0; the mapping must still be invertible.
    const std::uint32_t base = 0x40000000u;
    for (std::uint32_t in : {0x0u, 0x40000000u, 0x80000000u, 0x12345678u})
        EXPECT_EQ(zdrDecode32(zdrEncode32(in, base), base), in);
}

TEST(ZdrLane, BijectiveWhenBaseIsZero)
{
    const std::uint32_t base = 0;
    for (std::uint32_t in : {0x0u, 0x40000000u, 0xffffffffu, 0x1u})
        EXPECT_EQ(zdrDecode32(zdrEncode32(in, base), base), in);
}

TEST(ZdrLane, ConstantDetector)
{
    const Lane4 c = lane(0x40000000);
    EXPECT_TRUE(laneIsZdrConstant(c.data(), 4));
    const Lane4 not_c = lane(0x40000001);
    EXPECT_FALSE(laneIsZdrConstant(not_c.data(), 4));
    const Lane4 wrong_byte = lane(0x00400000);
    EXPECT_FALSE(laneIsZdrConstant(wrong_byte.data(), 4));
}

TEST(ZdrLane, BaseXorConstantDetector)
{
    const Lane4 base = lane(0x12345678);
    const Lane4 match = lane(0x12345678 ^ 0x40000000);
    const Lane4 miss = lane(0x12345678 ^ 0x40000001);
    EXPECT_TRUE(laneIsBaseXorConstant(match.data(), base.data(), 4));
    EXPECT_FALSE(laneIsBaseXorConstant(miss.data(), base.data(), 4));
}

TEST(ZdrLaneProperty, ExhaustiveBijectionOn2ByteLanes)
{
    // For 2-byte lanes the whole input space is checkable: for several
    // bases, encode must be a permutation of 0..65535.
    for (std::uint16_t base :
         {std::uint16_t{0x0000}, std::uint16_t{0x4000},
          std::uint16_t{0x390c}, std::uint16_t{0xffff}}) {
        std::array<bool, 65536> seen{};
        std::array<std::uint8_t, 2> b{
            static_cast<std::uint8_t>(base & 0xff),
            static_cast<std::uint8_t>(base >> 8)};
        for (std::uint32_t in = 0; in < 65536; ++in) {
            std::array<std::uint8_t, 2> i{
                static_cast<std::uint8_t>(in & 0xff),
                static_cast<std::uint8_t>(in >> 8)};
            std::array<std::uint8_t, 2> out{};
            zdrLaneEncode(out.data(), i.data(), b.data(), 2);
            const std::size_t key =
                out[0] | (static_cast<std::size_t>(out[1]) << 8);
            ASSERT_FALSE(seen[key]) << "collision at base " << base
                                    << " input " << in;
            seen[key] = true;

            std::array<std::uint8_t, 2> back{};
            zdrLaneDecode(back.data(), out.data(), b.data(), 2);
            ASSERT_EQ(back[0], i[0]);
            ASSERT_EQ(back[1], i[1]);
        }
    }
}

TEST(ZdrLaneProperty, RandomRoundTripAllLaneSizes)
{
    Rng rng(99);
    for (std::size_t lane_bytes : {2u, 4u, 8u, 16u}) {
        for (int trial = 0; trial < 2000; ++trial) {
            std::array<std::uint8_t, 16> in{};
            std::array<std::uint8_t, 16> base{};
            for (std::size_t i = 0; i < lane_bytes; ++i) {
                in[i] = static_cast<std::uint8_t>(rng.next64());
                base[i] = static_cast<std::uint8_t>(rng.next64());
            }
            // Bias some trials toward the special cases.
            if (trial % 5 == 0)
                std::memset(in.data(), 0, lane_bytes);
            if (trial % 7 == 0) {
                std::memcpy(in.data(), base.data(), lane_bytes);
                in[lane_bytes - 1] ^= zdrConstantByte;
            }
            std::array<std::uint8_t, 16> enc{};
            std::array<std::uint8_t, 16> dec{};
            zdrLaneEncode(enc.data(), in.data(), base.data(), lane_bytes);
            zdrLaneDecode(dec.data(), enc.data(), base.data(), lane_bytes);
            ASSERT_EQ(std::memcmp(dec.data(), in.data(), lane_bytes), 0);
        }
    }
}

TEST(ZdrLane, AliasedEncodeInPlace)
{
    Lane4 buf = lane(0x00000000);
    const Lane4 base = lane(0xdeadbeef);
    zdrLaneEncode(buf.data(), buf.data(), base.data(), 4);
    EXPECT_EQ(value(buf), 0x40000000u);
}

} // namespace
} // namespace bxt
