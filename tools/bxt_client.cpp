/**
 * @file
 * bxt_client: run a .bxtrace through a live bxtd server and report the
 * ones-on-bus delta the codec achieved, or fetch the server's telemetry
 * snapshot. `roundtrip` additionally decodes everything back and fails
 * unless the recovered bytes are bit-identical to the trace.
 *
 * Usage:
 *   bxt_client (--tcp HOST:PORT | --unix PATH) [--spec S] [--wires W]
 *              [--batch N] [--mode ping|encode|roundtrip|stats|snapshot]
 *              [TRACE]
 *
 * `snapshot` fetches the live `{"uptime_us", "metrics"}` document served
 * by the Snapshot opcode (what bxt_top polls); `stats` fetches the bare
 * metrics snapshot.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "client/client.h"
#include "common/cli.h"
#include "workloads/trace.h"

namespace {

struct Args
{
    std::string tcp;
    std::string unixPath;
    std::string spec = "baseline";
    unsigned wires = 32;
    std::size_t batch = 64;
    std::string mode = "roundtrip";
    std::string tracePath;
};

bxt::client::Client
connect(const Args &args, std::string &err)
{
    if (!args.unixPath.empty())
        return bxt::client::Client::connectUnix(args.unixPath, err);
    const std::size_t colon = args.tcp.rfind(':');
    if (colon == std::string::npos) {
        err = "bad --tcp '" + args.tcp + "' (want HOST:PORT)";
        return {};
    }
    const int port =
        static_cast<int>(std::strtol(args.tcp.c_str() + colon + 1,
                                     nullptr, 10));
    return bxt::client::Client::connectTcp(args.tcp.substr(0, colon), port,
                                           err);
}

/** Flatten trace transactions into one contiguous byte buffer. */
std::vector<std::uint8_t>
flatten(const bxt::Trace &trace)
{
    const std::size_t tx_bytes = trace.txBytes();
    std::vector<std::uint8_t> raw;
    raw.reserve(trace.txs.size() * tx_bytes);
    for (const bxt::Transaction &tx : trace.txs) {
        const auto bytes = tx.bytes();
        raw.insert(raw.end(), bytes.begin(), bytes.end());
    }
    return raw;
}

int
runTrace(const Args &args, bool roundtrip)
{
    bxt::Trace trace;
    std::string err;
    if (!bxt::tryLoadTrace(args.tracePath, trace, err)) {
        std::fprintf(stderr, "bxt_client: %s\n", err.c_str());
        return 1;
    }
    if (trace.txs.empty()) {
        std::fprintf(stderr, "bxt_client: trace '%s' is empty\n",
                     args.tracePath.c_str());
        return 1;
    }
    const std::uint32_t tx_bytes =
        static_cast<std::uint32_t>(trace.txBytes());
    const std::vector<std::uint8_t> raw = flatten(trace);

    bxt::client::Client client = connect(args, err);
    if (!client.connected()) {
        std::fprintf(stderr, "bxt_client: %s\n", err.c_str());
        return 1;
    }

    std::uint64_t input_ones = 0;
    std::uint64_t output_ones = 0;
    std::size_t mismatches = 0;
    std::string announced;
    std::uint64_t epoch = 0;
    std::size_t switches = 0;
    const std::size_t chunk_bytes = args.batch * tx_bytes;
    for (std::size_t off = 0; off < raw.size(); off += chunk_bytes) {
        const std::size_t n = std::min(chunk_bytes, raw.size() - off);
        const std::span<const std::uint8_t> slice(raw.data() + off, n);

        bxt::client::EncodeResult enc;
        if (!client.encode(args.spec, tx_bytes, args.wires, slice, enc,
                           err)) {
            std::fprintf(stderr, "bxt_client: encode failed: %s\n",
                         err.c_str());
            return 1;
        }
        input_ones += enc.inputOnes;
        output_ones += enc.payloadOnes + enc.metaOnes;
        if (!announced.empty() && announced != enc.announcedSpec)
            ++switches;
        announced = enc.announcedSpec;
        epoch = enc.switchEpoch;

        if (roundtrip) {
            // Decode under the announced concrete spec: for adaptive
            // requests that is the codec that actually produced the
            // payloads (and stays correct across a switch epoch).
            const std::string &decode_spec =
                enc.announcedSpec.empty() ? args.spec : enc.announcedSpec;
            bxt::client::DecodeResult dec;
            if (!client.decode(decode_spec, enc, dec, err)) {
                std::fprintf(stderr, "bxt_client: decode failed: %s\n",
                             err.c_str());
                return 1;
            }
            if (dec.raw.size() != n ||
                std::memcmp(dec.raw.data(), slice.data(), n) != 0)
                ++mismatches;
        }
    }

    const double removed_pct =
        input_ones == 0 ? 0.0
                        : (1.0 - static_cast<double>(output_ones) /
                                     static_cast<double>(input_ones)) *
                              100.0;
    std::printf("trace: %s (%zu tx of %u bytes)\n", trace.name.c_str(),
                trace.txs.size(), tx_bytes);
    std::printf("spec: %s  wires: %u\n", args.spec.c_str(), args.wires);
    if (!announced.empty() && announced != args.spec)
        std::printf("active spec: %s (epoch %llu, %zu switches seen)\n",
                    announced.c_str(),
                    static_cast<unsigned long long>(epoch), switches);
    std::printf("ones on bus: %llu -> %llu (%+.2f%% removed)\n",
                static_cast<unsigned long long>(input_ones),
                static_cast<unsigned long long>(output_ones), removed_pct);
    if (roundtrip) {
        std::printf("roundtrip: %s\n",
                    mismatches == 0 ? "bit-identical" : "MISMATCH");
        if (mismatches != 0)
            return 1;
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    Args args;
    bxt::Cli cli("bxt_client",
                 "run a .bxtrace through a live bxtd server and report "
                 "ones-on-bus deltas");
    cli.add("--tcp", "HOST:PORT", "connect over TCP",
            [&](const std::string &v) { args.tcp = v; });
    cli.add("--unix", "PATH", "connect over a Unix-domain socket",
            [&](const std::string &v) { args.unixPath = v; });
    cli.add("--spec", "S", "codec spec (default baseline)",
            [&](const std::string &v) { args.spec = v; });
    cli.add("--wires", "W", "bus width in bits, 32 or 64 (default 32)",
            [&](const std::string &v) {
                args.wires = static_cast<unsigned>(
                    std::strtoul(v.c_str(), nullptr, 0));
            });
    cli.add("--batch", "N", "transactions per request (default 64)",
            [&](const std::string &v) {
                args.batch = std::strtoul(v.c_str(), nullptr, 0);
            });
    cli.add("--mode", "M", "ping | encode | roundtrip | stats | snapshot",
            [&](const std::string &v) { args.mode = v; });
    cli.addPositional("TRACE", ".bxtrace file (encode/roundtrip modes)",
                      [&](const std::string &v) { args.tracePath = v; });
    if (!cli.parse(argc, argv))
        return cli.exitCode();

    if (args.tcp.empty() && args.unixPath.empty()) {
        std::fprintf(stderr, "bxt_client: need --tcp or --unix\n");
        return 2;
    }
    if (args.batch == 0 || args.batch > bxt::wire::maxTxPerRequest) {
        std::fprintf(stderr, "bxt_client: --batch out of range (1..%zu)\n",
                     bxt::wire::maxTxPerRequest);
        return 2;
    }

    std::string err;
    if (args.mode == "ping") {
        bxt::client::Client client = connect(args, err);
        if (!client.connected() || !client.ping(err)) {
            std::fprintf(stderr, "bxt_client: ping failed: %s\n",
                         err.c_str());
            return 1;
        }
        std::printf("pong\n");
        return 0;
    }
    if (args.mode == "stats" || args.mode == "snapshot") {
        bxt::client::Client client = connect(args, err);
        std::string json;
        const bool ok = client.connected() &&
                        (args.mode == "stats" ? client.stats(json, err)
                                              : client.snapshot(json, err));
        if (!ok) {
            std::fprintf(stderr, "bxt_client: %s failed: %s\n",
                         args.mode.c_str(), err.c_str());
            return 1;
        }
        std::printf("%s\n", json.c_str());
        return 0;
    }
    if (args.mode == "encode" || args.mode == "roundtrip") {
        if (args.tracePath.empty()) {
            std::fprintf(stderr,
                         "bxt_client: mode '%s' needs a TRACE argument\n",
                         args.mode.c_str());
            return 2;
        }
        return runTrace(args, args.mode == "roundtrip");
    }
    std::fprintf(stderr, "bxt_client: unknown --mode '%s'\n",
                 args.mode.c_str());
    return 2;
}
