/**
 * @file
 * Differential fuzzing CLI: sweeps codec specs over structured transaction
 * generators, checks every invariant in verify/invariants.h, and shrinks
 * failing inputs into tests/corpus/. Exit 0 when every invariant held.
 *
 * Usage:
 *   bxt_fuzz [--iters N] [--seconds S] [--seed HEX] [--spec SPEC ...]
 *            [--wires W ...] [--corpus DIR] [--idle F] [--no-shrink]
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "verify/differential.h"

namespace {

void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [options]\n"
        "  --iters N     transactions per (spec, wires) unit (default 20000)\n"
        "  --seconds S   wall-clock budget; overrides --iters when > 0\n"
        "  --seed X      campaign seed (hex or decimal)\n"
        "  --spec S      spec to fuzz; repeatable (default: canonical set)\n"
        "  --wires W     channel width in bits; repeatable (default: 32 64)\n"
        "  --corpus DIR  write shrunken repros here (default: off)\n"
        "  --idle F      bus idle-gap fraction (default 0.3)\n"
        "  --no-shrink   keep failing inputs unminimized\n",
        argv0);
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace bxt::verify;

    FuzzOptions options;
    std::vector<unsigned> wires;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s: %s needs a value\n", argv[0],
                             arg.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--iters") {
            options.iterationsPerSpec = std::strtoull(next(), nullptr, 0);
        } else if (arg == "--seconds") {
            options.secondsBudget = std::strtod(next(), nullptr);
        } else if (arg == "--seed") {
            options.seed = std::strtoull(next(), nullptr, 0);
        } else if (arg == "--spec") {
            options.specs.emplace_back(next());
        } else if (arg == "--wires") {
            wires.push_back(
                static_cast<unsigned>(std::strtoul(next(), nullptr, 0)));
        } else if (arg == "--corpus") {
            options.corpusDir = next();
        } else if (arg == "--idle") {
            options.idleFraction = std::strtod(next(), nullptr);
        } else if (arg == "--no-shrink") {
            options.shrinkFailures = false;
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else {
            usage(argv[0]);
            return 2;
        }
    }
    if (!wires.empty())
        options.dataWires = wires;
    options.progress = [](const std::string &line) {
        std::printf("  %s\n", line.c_str());
    };

    const FuzzReport report = runDifferentialFuzz(options);
    std::printf("%llu transactions checked, %zu failure(s)\n",
                static_cast<unsigned long long>(report.transactionsChecked),
                report.failures.size());
    for (const FuzzFailure &failure : report.failures) {
        std::printf("FAIL %s wires=%u seed=0x%llx\n  invariant: %s\n"
                    "  detail: %s\n  original: %s\n  shrunk:   %s%s\n",
                    failure.spec.c_str(), failure.dataWires,
                    static_cast<unsigned long long>(failure.seed),
                    failure.violation.invariant.c_str(),
                    failure.violation.detail.c_str(),
                    failure.original.toHex().c_str(),
                    failure.shrunk.toHex().c_str(),
                    failure.reproducesFresh ? "" : " (stream-state dependent)");
        if (!failure.reproPath.empty())
            std::printf("  repro: %s\n", failure.reproPath.c_str());
    }
    return report.ok() ? 0 : 1;
}
