/**
 * @file
 * Differential fuzzing CLI: sweeps codec specs over structured transaction
 * generators, checks every invariant in verify/invariants.h, and shrinks
 * failing inputs into tests/corpus/. Exit 0 when every invariant held.
 *
 * Usage:
 *   bxt_fuzz [--iters N] [--seconds S] [--seed HEX] [--spec SPEC ...]
 *            [--wires W ...] [--corpus DIR] [--idle F] [--no-shrink]
 *            [--batch [--batch-streams N] [--batch-tx N]] [--frames N]
 */

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/cli.h"
#include "server/wire.h"
#include "verify/batch_check.h"
#include "verify/differential.h"

int
main(int argc, char **argv)
{
    using namespace bxt::verify;

    FuzzOptions options;
    std::vector<unsigned> wires;
    bxt::Cli cli("bxt_fuzz",
                 "differential fuzzer: sweep codec specs over structured "
                 "generators and check every invariant");
    cli.add("--iters", "N",
            "transactions per (spec, wires) unit (default 20000)",
            [&](const std::string &v) {
                options.iterationsPerSpec =
                    std::strtoull(v.c_str(), nullptr, 0);
            });
    cli.add("--seconds", "S",
            "wall-clock budget; overrides --iters when > 0",
            [&](const std::string &v) {
                options.secondsBudget = std::strtod(v.c_str(), nullptr);
            });
    cli.add("--seed", "X", "campaign seed (hex or decimal)",
            [&](const std::string &v) {
                options.seed = std::strtoull(v.c_str(), nullptr, 0);
            });
    cli.add("--spec", "S",
            "spec to fuzz; repeatable (default: canonical set)",
            [&](const std::string &v) { options.specs.push_back(v); });
    cli.add("--wires", "W",
            "channel width in bits; repeatable (default: 32 64)",
            [&](const std::string &v) {
                wires.push_back(static_cast<unsigned>(
                    std::strtoul(v.c_str(), nullptr, 0)));
            });
    cli.add("--corpus", "DIR",
            "write shrunken repros here (default: off)",
            [&](const std::string &v) { options.corpusDir = v; });
    cli.add("--idle", "F", "bus idle-gap fraction (default 0.3)",
            [&](const std::string &v) {
                options.idleFraction = std::strtod(v.c_str(), nullptr);
            });
    cli.addFlag("--no-shrink", "keep failing inputs unminimized",
                [&] { options.shrinkFailures = false; });
    std::uint64_t frame_iters = 0;
    cli.add("--frames", "N",
            "also fuzz the bxtd wire-frame parser for N iterations",
            [&](const std::string &v) {
                frame_iters = std::strtoull(v.c_str(), nullptr, 0);
            });
    bool batch_mode = false;
    BatchFuzzOptions batch_options;
    cli.addFlag("--batch",
                "also fuzz the batch kernels against the scalar path",
                [&] { batch_mode = true; });
    cli.add("--batch-streams", "N",
            "generator streams per (spec, wires, batch) unit (default 12)",
            [&](const std::string &v) {
                batch_options.streamsPerSpec =
                    std::strtoull(v.c_str(), nullptr, 0);
            });
    cli.add("--batch-tx", "N",
            "transactions per batch-mode stream (default 96)",
            [&](const std::string &v) {
                batch_options.txPerStream =
                    std::strtoull(v.c_str(), nullptr, 0);
            });
    if (!cli.parse(argc, argv))
        return cli.exitCode();

    bool frames_ok = true;
    if (frame_iters > 0) {
        const bxt::wire::FrameFuzzReport frames =
            bxt::wire::fuzzFrameParser(options.seed, frame_iters);
        std::printf("frame parser: %llu iterations, %llu clean frames "
                    "round-tripped, %llu corruptions typed, %zu failure(s)\n",
                    static_cast<unsigned long long>(frames.iterations),
                    static_cast<unsigned long long>(frames.framesParsed),
                    static_cast<unsigned long long>(frames.errorsTyped),
                    frames.failures.size());
        for (const std::string &failure : frames.failures)
            std::printf("FRAME FAIL %s\n", failure.c_str());
        frames_ok = frames.ok();
    }
    if (!wires.empty())
        options.dataWires = wires;
    options.progress = [](const std::string &line) {
        std::printf("  %s\n", line.c_str());
    };

    bool batch_ok = true;
    if (batch_mode) {
        batch_options.specs = options.specs;
        batch_options.seed = options.seed;
        batch_options.idleFraction = options.idleFraction;
        if (!wires.empty())
            batch_options.dataWires = wires;
        batch_options.progress = options.progress;
        const BatchFuzzReport batch = runBatchDifferentialFuzz(batch_options);
        std::printf("batch kernels: %llu transactions checked against the "
                    "scalar path, %zu failure(s)\n",
                    static_cast<unsigned long long>(
                        batch.transactionsChecked),
                    batch.failures.size());
        for (const BatchFuzzFailure &failure : batch.failures)
            std::printf("BATCH FAIL %s wires=%u batch=%zu seed=0x%llx\n"
                        "  invariant: %s\n  detail: %s\n",
                        failure.spec.c_str(), failure.dataWires,
                        failure.batchTx,
                        static_cast<unsigned long long>(failure.seed),
                        failure.violation.invariant.c_str(),
                        failure.violation.detail.c_str());
        batch_ok = batch.ok();
    }

    const FuzzReport report = runDifferentialFuzz(options);
    std::printf("%llu transactions checked, %zu failure(s)\n",
                static_cast<unsigned long long>(report.transactionsChecked),
                report.failures.size());
    for (const FuzzFailure &failure : report.failures) {
        std::printf("FAIL %s wires=%u seed=0x%llx\n  invariant: %s\n"
                    "  detail: %s\n  original: %s\n  shrunk:   %s%s\n",
                    failure.spec.c_str(), failure.dataWires,
                    static_cast<unsigned long long>(failure.seed),
                    failure.violation.invariant.c_str(),
                    failure.violation.detail.c_str(),
                    failure.original.toHex().c_str(),
                    failure.shrunk.toHex().c_str(),
                    failure.reproducesFresh ? "" : " (stream-state dependent)");
        if (!failure.reproPath.empty())
            std::printf("  repro: %s\n", failure.reproPath.c_str());
    }
    return (report.ok() && frames_ok && batch_ok) ? 0 : 1;
}
