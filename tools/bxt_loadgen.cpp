/**
 * @file
 * bxt_loadgen: drive a running bxtd with encode traffic and report
 * latency percentiles and throughput.
 *
 * Three modes:
 *  - closed-loop (default): --connections independent connections, each
 *    with one request in flight; each request waits for its response, so
 *    the latency distribution is pure service + round-trip time. The
 *    first --warmup samples per connection are excluded from the latency
 *    quantiles (they are dominated by codec construction and cold
 *    caches), but still count toward throughput.
 *  - open-loop: keep up to --depth request frames in flight on one
 *    connection (pipelined); latencies then include queueing delay.
 *  - scenario (--scenario): replay a seeded multi-tenant traffic
 *    scenario (workloads/scenario.h) across --connections connections,
 *    tagging each request with its tenant's stream id so the server's
 *    per-tenant telemetry lights up. Reports per-tenant and aggregate
 *    latency quantiles plus ones-on-bus deltas. By default arrivals are
 *    paced to the scenario's open-loop schedule; --no-pace sends
 *    back-to-back (the CI throughput-floor configuration).
 *
 * Every request frame carries --batch transactions (closed/open loop)
 * or the scenario's per-request count, so the transaction rate is the
 * request rate times the batch size. Results go to stdout and, with
 * --json, into the unified bench JSON schema (BENCH_server_loadgen.json
 * / BENCH_server_scenarios.json in CI).
 *
 * Usage:
 *   bxt_loadgen (--tcp HOST:PORT | --unix PATH) [--spec S] [--wires W]
 *               [--tx-bytes B] [--batch N] [--requests N] [--depth D]
 *               [--open-loop | --closed-loop] [--connections M]
 *               [--warmup K] [--scenario NAME|PATH] [--alpha A]
 *               [--adaptive-compare S1,S2,...] [--no-pace] [--seed X]
 *               [--json PATH] [--assert-min-tx-rate R]
 *               [--trace-sample P]
 *
 * --adaptive-compare (scenario mode) grades the adaptive spec: the
 * identical request stream is replayed once under --spec (normally
 * `adaptive[:...]`) and once per listed fixed spec — fresh connections
 * per pass, so per-stream controllers start cold — and each pass's
 * total ones-on-bus is printed and written as a scope:"spec" JSON row
 * for `bxt_report --scenario --assert-adaptive-wins`.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include "client/client.h"
#include "common/cli.h"
#include "common/rng.h"
#include "common/stats.h"
#include "suite_eval.h"
#include "telemetry/trace.h"
#include "workloads/scenario.h"

namespace {

struct Args
{
    std::string tcp;
    std::string unixPath;
    std::string spec = "baseline";
    unsigned wires = 32;
    std::uint32_t txBytes = 32;
    std::size_t batch = 64;
    std::size_t requests = 2000;
    bool requestsSet = false;
    std::size_t depth = 16;
    bool openLoop = false;
    std::size_t connections = 0; ///< 0 = auto (1; 4 for scenarios).
    std::size_t warmup = 32;
    std::string scenarioName;
    /**
     * Comma-separated fixed specs to race against --spec on the same
     * scenario stream (scenario mode): the identical request stream is
     * replayed once under --spec (normally `adaptive[:...]`) and once
     * per listed spec, and every pass's total ones-on-bus lands in a
     * scope:"spec" JSON row. Empty = plain single-pass scenario replay
     * under each tenant's own spec.
     */
    std::string adaptiveCompare;
    double alphaOverride = -1.0; ///< < 0 = keep the scenario's alpha.
    bool noPace = false;
    std::uint64_t seed = 1;
    std::string jsonPath;
    double assertMinTxRate = 0.0;
    /** Probability a request carries a sampled trace context (0 = off). */
    double traceSample = 0.0;
};

/**
 * Roll the per-request trace dice: with probability --trace-sample the
 * next request goes out as a v2 frame with a fresh sampled trace
 * context (the server records its lifecycle spans); otherwise untraced.
 */
void
applyTraceSampling(bxt::client::Client &client, const Args &args,
                   bxt::Rng &rng)
{
    if (args.traceSample <= 0.0)
        return;
    if (rng.nextDouble() < args.traceSample)
        client.setTrace(rng.next64() | 1, rng.next64(), true);
    else
        client.clearTrace();
}

/** Per-connection closed-loop result. */
struct ConnResult
{
    std::vector<double> latenciesUs; ///< One sample per request frame.
    bool ok = true;
    std::string err;
};

/** Per-tenant scenario accumulation (mergeable across workers). */
struct TenantStats
{
    std::uint64_t requests = 0;
    std::uint64_t txs = 0;
    std::uint64_t onesIn = 0;
    std::uint64_t onesOut = 0; ///< Encoded payload + metadata ones.
    std::vector<double> latenciesUs;
};

bxt::client::Client
connectOnce(const Args &args, std::string &err)
{
    if (!args.unixPath.empty())
        return bxt::client::Client::connectUnix(args.unixPath, err);
    const std::size_t colon = args.tcp.rfind(':');
    if (colon == std::string::npos) {
        err = "bad --tcp '" + args.tcp + "'";
        return {};
    }
    return bxt::client::Client::connectTcp(
        args.tcp.substr(0, colon),
        static_cast<int>(
            std::strtol(args.tcp.c_str() + colon + 1, nullptr, 10)),
        err);
}

/**
 * A connect failure worth retrying: the server is booting or its accept
 * slice momentarily lagged (ECONNREFUSED / EAGAIN strerror text). A bad
 * address or a missing Unix path fails fast.
 */
bool
isTransientConnectError(const std::string &err)
{
    return err.find("Connection refused") != std::string::npos ||
           err.find("Resource temporarily unavailable") !=
               std::string::npos ||
           err.find("Try again") != std::string::npos;
}

/**
 * Connect with bounded backoff: a fleet of worker connections arriving
 * while bxtd is still binding its shard listeners (or while a shard's
 * backlog briefly fills) should ride through rather than fail the run.
 * Backoff doubles 5 ms → 80 ms within a ~2 s total budget.
 */
bxt::client::Client
connectClient(const Args &args, std::string &err)
{
    constexpr std::uint64_t budget_us = 2'000'000;
    std::uint64_t delay_ms = 5;
    const std::uint64_t start = bxt::telemetry::nowMicros();
    for (;;) {
        err.clear();
        bxt::client::Client client = connectOnce(args, err);
        if (client.connected())
            return client;
        if (!isTransientConnectError(err) ||
            bxt::telemetry::nowMicros() - start >= budget_us)
            return client;
        std::this_thread::sleep_for(
            std::chrono::milliseconds(delay_ms));
        delay_ms = std::min<std::uint64_t>(delay_ms * 2, 80);
    }
}

std::vector<std::uint8_t>
randomPayload(const Args &args, bxt::Rng &rng)
{
    std::vector<std::uint8_t> raw(args.batch * args.txBytes);
    for (std::uint8_t &byte : raw)
        byte = static_cast<std::uint8_t>(rng.nextBounded(256));
    return raw;
}

/** One closed-loop connection: one request in flight at a time. */
void
runClosedLoopConn(const Args &args, std::size_t conn, std::size_t requests,
                  ConnResult &out)
{
    std::string err;
    bxt::client::Client client = connectClient(args, err);
    if (!client.connected()) {
        out.ok = false;
        out.err = err;
        return;
    }
    bxt::Rng rng(args.seed + conn);
    const std::vector<std::uint8_t> raw = randomPayload(args, rng);
    out.latenciesUs.reserve(requests);
    for (std::size_t i = 0; i < requests; ++i) {
        applyTraceSampling(client, args, rng);
        bxt::client::EncodeResult enc;
        const std::uint64_t t0 = bxt::telemetry::nowMicros();
        if (!client.encode(args.spec, args.txBytes, args.wires, raw, enc,
                           err)) {
            out.ok = false;
            out.err = err;
            return;
        }
        out.latenciesUs.push_back(
            static_cast<double>(bxt::telemetry::nowMicros() - t0));
    }
}

/**
 * Open loop over the raw wire: keep up to --depth serialized request
 * frames in flight, reading responses as they arrive.
 */
bool
runOpenLoop(const Args &args, int fd, ConnResult &out, std::string &err)
{
    bxt::Rng rng(args.seed);
    const std::vector<std::uint8_t> raw = randomPayload(args, rng);

    bxt::wire::Frame request;
    request.opcode = bxt::wire::Opcode::Encode;
    request.spec = args.spec;
    bxt::wire::BodyWriter body;
    body.u32(args.txBytes);
    body.u32(args.wires);
    body.u64(args.batch);
    body.bytes(raw.data(), raw.size());
    request.body = body.take();
    const std::vector<std::uint8_t> frame_bytes =
        bxt::wire::serializeFrame(request);

    bxt::wire::FrameParser parser;
    std::uint8_t buf[64 * 1024];
    std::deque<std::uint64_t> send_times;
    std::size_t sent = 0;
    std::size_t received = 0;
    out.latenciesUs.reserve(args.requests);

    while (received < args.requests) {
        while (sent < args.requests && send_times.size() < args.depth) {
            const std::uint8_t *bytes = frame_bytes.data();
            std::size_t size = frame_bytes.size();
            std::vector<std::uint8_t> traced_bytes;
            if (args.traceSample > 0.0 &&
                rng.nextDouble() < args.traceSample) {
                // Traced frames re-serialize (fresh ids per request);
                // the untraced fast path reuses the canned frame.
                request.traceId = rng.next64() | 1;
                request.spanId = rng.next64();
                request.traceSampled = true;
                traced_bytes = bxt::wire::serializeFrame(request);
                bytes = traced_bytes.data();
                size = traced_bytes.size();
            }
            if (!bxt::net::writeAll(fd, bytes, size, err))
                return false;
            send_times.push_back(bxt::telemetry::nowMicros());
            ++sent;
        }

        bxt::wire::Frame response;
        bxt::wire::WireError parse_err;
        const bxt::wire::FrameParser::Status st =
            parser.next(response, parse_err);
        if (st == bxt::wire::FrameParser::Status::Bad) {
            err = "response stream corrupt: " + parse_err.detail;
            return false;
        }
        if (st == bxt::wire::FrameParser::Status::NeedMore) {
            const long n = bxt::net::readSome(fd, buf, sizeof(buf), err);
            if (n < 0)
                return false;
            if (n == 0) {
                err = "server closed the connection";
                return false;
            }
            parser.feed(buf, static_cast<std::size_t>(n));
            continue;
        }
        if (response.opcode == bxt::wire::Opcode::Error) {
            bxt::wire::ErrorCode code = bxt::wire::ErrorCode::None;
            std::string message;
            bxt::wire::parseErrorFrame(response, code, message);
            err = bxt::wire::errorCodeName(code) + ": " + message;
            return false;
        }
        out.latenciesUs.push_back(static_cast<double>(
            bxt::telemetry::nowMicros() - send_times.front()));
        send_times.pop_front();
        ++received;
    }
    return true;
}

/**
 * Post-warm-up latency samples of one connection: the first
 * min(--warmup, n-1) samples are excluded so codec-construction and
 * cold-cache spikes do not blend into steady-state p99.
 */
std::vector<double>
steadySamples(const std::vector<double> &samples, std::size_t warmup)
{
    const std::size_t drop =
        samples.empty() ? 0 : std::min(warmup, samples.size() - 1);
    return {samples.begin() + static_cast<std::ptrdiff_t>(drop),
            samples.end()};
}

/** One scenario worker: replays its round-robin share of the stream. */
struct ScenarioWorker
{
    std::vector<TenantStats> tenants;
    bool ok = true;
    std::string err;
};

void
runScenarioConn(const Args &args,
                const std::vector<bxt::scenario::Request> &stream,
                const std::string &spec_override, std::size_t conn,
                std::size_t stride, std::uint64_t start_us, bool pace,
                ScenarioWorker &out)
{
    std::string err;
    bxt::client::Client client = connectClient(args, err);
    if (!client.connected()) {
        out.ok = false;
        out.err = err;
        return;
    }
    bxt::Rng rng(args.seed ^ (0x9e3779b97f4a7c15ull + conn));
    for (std::size_t i = conn; i < stream.size(); i += stride) {
        const bxt::scenario::Request &req = stream[i];
        const std::string &spec =
            spec_override.empty() ? req.spec : spec_override;
        applyTraceSampling(client, args, rng);
        if (pace) {
            const double target =
                static_cast<double>(start_us) + req.arrivalUs;
            const double now =
                static_cast<double>(bxt::telemetry::nowMicros());
            if (target > now) {
                std::this_thread::sleep_for(std::chrono::microseconds(
                    static_cast<std::int64_t>(target - now)));
            }
        }
        client.setStreamId(
            static_cast<std::uint16_t>((req.tenant % 0xffffu) + 1));
        bxt::client::EncodeResult enc;
        const std::uint64_t t0 = bxt::telemetry::nowMicros();
        if (!client.encode(spec, req.txBytes, req.busBits, req.payload,
                           enc, err)) {
            out.ok = false;
            out.err = "request " + std::to_string(req.index) + " (tenant " +
                      std::to_string(req.tenant) + ", " + spec +
                      "): " + err;
            return;
        }
        const double lat_us =
            static_cast<double>(bxt::telemetry::nowMicros() - t0);
        TenantStats &slot = out.tenants[req.tenant];
        slot.requests += 1;
        slot.txs += enc.count;
        slot.onesIn += enc.inputOnes;
        slot.onesOut += enc.payloadOnes + enc.metaOnes;
        slot.latenciesUs.push_back(lat_us);
    }
}

double
removedPct(std::uint64_t ones_in, std::uint64_t ones_out)
{
    if (ones_in == 0)
        return 0.0;
    return 100.0 *
           (1.0 - static_cast<double>(ones_out) /
                      static_cast<double>(ones_in));
}

int
runScenario(const Args &args)
{
    std::string err;
    bxt::scenario::Config config;
    if (!bxt::scenario::load(args.scenarioName, config, err)) {
        std::fprintf(stderr, "bxt_loadgen: %s\n", err.c_str());
        return 2;
    }
    if (args.alphaOverride >= 0.0)
        config.alpha = args.alphaOverride;
    if (args.requestsSet)
        config.requests = static_cast<std::uint32_t>(args.requests);

    bxt::scenario::Engine engine(config, args.seed);
    std::vector<bxt::scenario::Request> stream;
    stream.reserve(config.requests);
    bxt::scenario::Request req;
    while (engine.next(req))
        stream.push_back(std::move(req));

    const std::size_t conns =
        args.connections > 0 ? args.connections : 4;
    const bool pace = !args.noPace && config.ratePerSec > 0.0;

    // One full replay of the stream (fresh connections, so adaptive
    // controllers start cold) under an optional all-requests spec
    // override; fills the per-tenant table and the wall-clock time.
    const auto replay = [&](const std::string &spec_override,
                            std::vector<TenantStats> &tenants,
                            double &seconds, std::string &replay_err) {
        std::vector<ScenarioWorker> workers(conns);
        for (ScenarioWorker &w : workers)
            w.tenants.resize(config.tenants);
        const std::uint64_t start_us = bxt::telemetry::nowMicros();
        std::vector<std::thread> threads;
        threads.reserve(conns);
        for (std::size_t c = 0; c < conns; ++c) {
            threads.emplace_back(runScenarioConn, std::cref(args),
                                 std::cref(stream),
                                 std::cref(spec_override), c, conns,
                                 start_us, pace, std::ref(workers[c]));
        }
        for (std::thread &t : threads)
            t.join();
        seconds =
            static_cast<double>(bxt::telemetry::nowMicros() - start_us) /
            1.0e6;
        for (const ScenarioWorker &w : workers) {
            if (!w.ok) {
                replay_err = w.err;
                return false;
            }
        }
        tenants.assign(config.tenants, TenantStats{});
        for (const ScenarioWorker &w : workers) {
            for (std::uint32_t t = 0; t < config.tenants; ++t) {
                const TenantStats &src = w.tenants[t];
                TenantStats &dst = tenants[t];
                dst.requests += src.requests;
                dst.txs += src.txs;
                dst.onesIn += src.onesIn;
                dst.onesOut += src.onesOut;
                dst.latenciesUs.insert(dst.latenciesUs.end(),
                                       src.latenciesUs.begin(),
                                       src.latenciesUs.end());
            }
        }
        return true;
    };

    const bool comparing = !args.adaptiveCompare.empty();
    // The primary pass: each tenant's own spec, or — when racing specs
    // with --adaptive-compare — everything under --spec (the adaptive
    // spec whose choices we are grading).
    const std::string primary_override = comparing ? args.spec : "";
    std::vector<TenantStats> tenants;
    double seconds = 0.0;
    if (!replay(primary_override, tenants, seconds, err)) {
        std::fprintf(stderr, "bxt_loadgen: %s\n", err.c_str());
        return 1;
    }

    std::vector<double> all_lat;
    std::uint64_t total_req = 0, total_tx = 0, total_in = 0, total_out = 0;
    for (const TenantStats &t : tenants) {
        total_req += t.requests;
        total_tx += t.txs;
        total_in += t.onesIn;
        total_out += t.onesOut;
        all_lat.insert(all_lat.end(), t.latenciesUs.begin(),
                       t.latenciesUs.end());
    }

    /** One spec's totals over the identical stream (scope:"spec" row). */
    struct SpecPass
    {
        std::string spec;
        std::uint64_t onesIn = 0;
        std::uint64_t onesOut = 0;
        std::uint64_t txs = 0;
        double seconds = 0.0;
    };
    std::vector<SpecPass> spec_passes;
    if (comparing) {
        spec_passes.push_back(
            {args.spec, total_in, total_out, total_tx, seconds});
        std::size_t start = 0;
        const std::string &list = args.adaptiveCompare;
        while (start <= list.size()) {
            std::size_t end = list.find(',', start);
            if (end == std::string::npos)
                end = list.size();
            const std::string fixed = list.substr(start, end - start);
            start = end + 1;
            if (fixed.empty()) {
                if (end == list.size())
                    break;
                continue;
            }
            std::vector<TenantStats> pass_tenants;
            double pass_seconds = 0.0;
            if (!replay(fixed, pass_tenants, pass_seconds, err)) {
                std::fprintf(stderr, "bxt_loadgen: spec '%s': %s\n",
                             fixed.c_str(), err.c_str());
                return 1;
            }
            SpecPass pass;
            pass.spec = fixed;
            pass.seconds = pass_seconds;
            for (const TenantStats &t : pass_tenants) {
                pass.onesIn += t.onesIn;
                pass.onesOut += t.onesOut;
                pass.txs += t.txs;
            }
            // Every pass replays the identical prebuilt payloads, so a
            // differing ones_in means the comparison is not apples to
            // apples — refuse to report it.
            if (pass.onesIn != total_in || pass.txs != total_tx) {
                std::fprintf(stderr,
                             "bxt_loadgen: spec '%s' saw ones_in %llu / "
                             "txs %llu, expected %llu / %llu\n",
                             fixed.c_str(),
                             static_cast<unsigned long long>(pass.onesIn),
                             static_cast<unsigned long long>(pass.txs),
                             static_cast<unsigned long long>(total_in),
                             static_cast<unsigned long long>(total_tx));
                return 1;
            }
            spec_passes.push_back(std::move(pass));
            if (end == list.size())
                break;
        }
    }

    const double req_rate =
        seconds > 0.0 ? static_cast<double>(total_req) / seconds : 0.0;
    const double tx_rate =
        seconds > 0.0 ? static_cast<double>(total_tx) / seconds : 0.0;
    const double p50 = bxt::percentile(all_lat, 50.0);
    const double p95 = bxt::percentile(all_lat, 95.0);
    const double p99 = bxt::percentile(all_lat, 99.0);

    std::printf("scenario: %s  seed: %llu  tenants: %u  alpha: %.2f  "
                "connections: %zu  paced: %s\n",
                config.name.c_str(),
                static_cast<unsigned long long>(args.seed), config.tenants,
                config.alpha, conns, pace ? "yes" : "no");
    std::printf("requests: %llu  elapsed: %.3f s  throughput: %.0f req/s  "
                "%.0f tx/s\n",
                static_cast<unsigned long long>(total_req), seconds,
                req_rate, tx_rate);
    std::printf("latency us: p50 %.1f  p95 %.1f  p99 %.1f\n", p50, p95,
                p99);
    std::printf("ones on bus: in %llu  out %llu  removed %.2f%%\n",
                static_cast<unsigned long long>(total_in),
                static_cast<unsigned long long>(total_out),
                removedPct(total_in, total_out));

    // Per-tenant table, busiest first.
    std::vector<std::uint32_t> order(config.tenants);
    std::iota(order.begin(), order.end(), 0u);
    std::sort(order.begin(), order.end(),
              [&](std::uint32_t a, std::uint32_t b) {
                  if (tenants[a].requests != tenants[b].requests)
                      return tenants[a].requests > tenants[b].requests;
                  return a < b;
              });
    const std::size_t shown = std::min<std::size_t>(order.size(), 10);
    std::printf("%-7s %-22s %5s %7s %8s %8s %8s %8s %8s\n", "tenant",
                "spec", "txB", "reqs", "txs", "p50us", "p95us", "p99us",
                "rm%");
    for (std::size_t i = 0; i < shown; ++i) {
        const std::uint32_t t = order[i];
        const TenantStats &s = tenants[t];
        std::printf("%-7u %-22s %5u %7llu %8llu %8.1f %8.1f %8.1f %8.2f\n",
                    t, engine.tenantSpec(t).c_str(),
                    engine.tenantTxBytes(t),
                    static_cast<unsigned long long>(s.requests),
                    static_cast<unsigned long long>(s.txs),
                    bxt::percentile(s.latenciesUs, 50.0),
                    bxt::percentile(s.latenciesUs, 95.0),
                    bxt::percentile(s.latenciesUs, 99.0),
                    removedPct(s.onesIn, s.onesOut));
    }
    if (shown < order.size())
        std::printf("(%zu of %zu tenants shown)\n", shown, order.size());

    if (comparing) {
        std::printf("\nspec comparison over the identical stream "
                    "(%llu tx, ones_in %llu):\n",
                    static_cast<unsigned long long>(total_tx),
                    static_cast<unsigned long long>(total_in));
        std::printf("%-44s %14s %8s\n", "spec", "ones_out", "rm%");
        for (const SpecPass &pass : spec_passes) {
            std::printf("%-44s %14llu %8.2f\n", pass.spec.c_str(),
                        static_cast<unsigned long long>(pass.onesOut),
                        removedPct(pass.onesIn, pass.onesOut));
        }
    }

    if (!args.jsonPath.empty() &&
        !bxt::writeBenchJson(
            args.jsonPath, "server_scenarios",
            [&](bxt::JsonWriter &w) {
                w.beginObject();
                w.kv("scope", "aggregate");
                w.kv("scenario", config.name);
                w.kv("seed", static_cast<std::uint64_t>(args.seed));
                w.kv("tenants",
                     static_cast<std::uint64_t>(config.tenants));
                w.kv("alpha", config.alpha);
                w.kv("connections", static_cast<std::uint64_t>(conns));
                w.kv("paced", pace);
                if (comparing)
                    w.kv("spec_override", args.spec);
                w.kv("requests", total_req);
                w.kv("txs", total_tx);
                w.kv("seconds", seconds);
                w.kv("req_per_s", req_rate);
                w.kv("tx_per_s", tx_rate);
                w.kv("p50_us", p50);
                w.kv("p95_us", p95);
                w.kv("p99_us", p99);
                w.kv("ones_in", total_in);
                w.kv("ones_out", total_out);
                w.kv("ones_removed_pct", removedPct(total_in, total_out));
                w.endObject();
                for (std::uint32_t t = 0; t < config.tenants; ++t) {
                    const TenantStats &s = tenants[t];
                    w.beginObject();
                    w.kv("scope", "tenant");
                    w.kv("tenant", static_cast<std::uint64_t>(t));
                    w.kv("stream_id", static_cast<std::uint64_t>(
                                          (t % 0xffffu) + 1));
                    w.kv("spec", engine.tenantSpec(t));
                    w.kv("tx_bytes", static_cast<std::uint64_t>(
                                         engine.tenantTxBytes(t)));
                    w.kv("weight", engine.tenantWeight(t));
                    w.kv("requests", s.requests);
                    w.kv("txs", s.txs);
                    w.kv("p50_us", bxt::percentile(s.latenciesUs, 50.0));
                    w.kv("p95_us", bxt::percentile(s.latenciesUs, 95.0));
                    w.kv("p99_us", bxt::percentile(s.latenciesUs, 99.0));
                    w.kv("ones_in", s.onesIn);
                    w.kv("ones_out", s.onesOut);
                    w.kv("ones_removed_pct",
                         removedPct(s.onesIn, s.onesOut));
                    w.endObject();
                }
                for (const SpecPass &pass : spec_passes) {
                    w.beginObject();
                    w.kv("scope", "spec");
                    w.kv("scenario", config.name);
                    w.kv("spec", pass.spec);
                    w.kv("txs", pass.txs);
                    w.kv("seconds", pass.seconds);
                    w.kv("ones_in", pass.onesIn);
                    w.kv("ones_out", pass.onesOut);
                    w.kv("ones_removed_pct",
                         removedPct(pass.onesIn, pass.onesOut));
                    w.endObject();
                }
            }))
        return 1;

    if (args.assertMinTxRate > 0.0 && tx_rate < args.assertMinTxRate) {
        std::fprintf(stderr,
                     "bxt_loadgen: tx rate %.0f/s below required %.0f/s\n",
                     tx_rate, args.assertMinTxRate);
        return 1;
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    Args args;
    bxt::Cli cli("bxt_loadgen",
                 "load generator for bxtd: encode traffic, latency "
                 "percentiles, throughput");
    cli.add("--tcp", "HOST:PORT", "connect over TCP",
            [&](const std::string &v) { args.tcp = v; });
    cli.add("--unix", "PATH", "connect over a Unix-domain socket",
            [&](const std::string &v) { args.unixPath = v; });
    cli.add("--spec", "S", "codec spec (default baseline)",
            [&](const std::string &v) { args.spec = v; });
    cli.add("--wires", "W", "bus width in bits (default 32)",
            [&](const std::string &v) {
                args.wires = static_cast<unsigned>(
                    std::strtoul(v.c_str(), nullptr, 0));
            });
    cli.add("--tx-bytes", "B", "transaction size (default 32)",
            [&](const std::string &v) {
                args.txBytes = static_cast<std::uint32_t>(
                    std::strtoul(v.c_str(), nullptr, 0));
            });
    cli.add("--batch", "N", "transactions per request frame (default 64)",
            [&](const std::string &v) {
                args.batch = std::strtoul(v.c_str(), nullptr, 0);
            });
    cli.add("--requests", "N",
            "request frames to send (default 2000, or the scenario's)",
            [&](const std::string &v) {
                args.requests = std::strtoul(v.c_str(), nullptr, 0);
                args.requestsSet = true;
            });
    cli.add("--depth", "D", "open-loop frames in flight (default 16)",
            [&](const std::string &v) {
                args.depth = std::strtoul(v.c_str(), nullptr, 0);
            });
    cli.addFlag("--open-loop", "pipeline up to --depth requests",
                [&] { args.openLoop = true; });
    cli.addFlag("--closed-loop", "one request in flight (default)",
                [&] { args.openLoop = false; });
    cli.add("--connections", "M",
            "parallel connections (default 1; 4 for --scenario)",
            [&](const std::string &v) {
                args.connections = std::strtoul(v.c_str(), nullptr, 0);
            });
    cli.add("--warmup", "K",
            "per-connection samples excluded from latency quantiles "
            "(default 32)",
            [&](const std::string &v) {
                args.warmup = std::strtoul(v.c_str(), nullptr, 0);
            });
    cli.add("--scenario", "NAME|PATH",
            "replay a multi-tenant scenario preset or spec file",
            [&](const std::string &v) { args.scenarioName = v; });
    cli.add("--adaptive-compare", "S1,S2,...",
            "scenario mode: replay the identical stream under --spec and "
            "each listed fixed spec, emitting scope:\"spec\" ones-on-bus "
            "rows (the adaptive-vs-fixed CI gate)",
            [&](const std::string &v) { args.adaptiveCompare = v; });
    cli.add("--alpha", "A", "override the scenario's Zipf exponent",
            [&](const std::string &v) {
                args.alphaOverride = std::strtod(v.c_str(), nullptr);
            });
    cli.addFlag("--no-pace",
                "send scenario requests back-to-back (ignore arrivals)",
                [&] { args.noPace = true; });
    cli.add("--seed", "X", "payload/scenario RNG seed (default 1)",
            [&](const std::string &v) {
                args.seed = std::strtoull(v.c_str(), nullptr, 0);
            });
    cli.add("--json", "PATH", "write bench JSON here",
            [&](const std::string &v) { args.jsonPath = v; });
    cli.add("--assert-min-tx-rate", "R",
            "exit 1 unless the tx/s rate reaches R (CI gate)",
            [&](const std::string &v) {
                args.assertMinTxRate = std::strtod(v.c_str(), nullptr);
            });
    cli.add("--trace-sample", "P",
            "probability in [0,1] that a request carries a sampled "
            "trace context (default 0 = untraced)",
            [&](const std::string &v) {
                args.traceSample = std::strtod(v.c_str(), nullptr);
            });
    if (!cli.parse(argc, argv))
        return cli.exitCode();

    if (args.tcp.empty() && args.unixPath.empty()) {
        std::fprintf(stderr, "bxt_loadgen: need --tcp or --unix\n");
        return 2;
    }
    if (args.batch == 0 || args.batch > bxt::wire::maxTxPerRequest ||
        args.requests == 0 || args.depth == 0) {
        std::fprintf(stderr,
                     "bxt_loadgen: bad --batch/--requests/--depth\n");
        return 2;
    }
    if (args.traceSample < 0.0 || args.traceSample > 1.0) {
        std::fprintf(stderr,
                     "bxt_loadgen: --trace-sample wants [0,1]\n");
        return 2;
    }

    if (!args.adaptiveCompare.empty() && args.scenarioName.empty()) {
        std::fprintf(stderr,
                     "bxt_loadgen: --adaptive-compare needs --scenario\n");
        return 2;
    }
    if (!args.scenarioName.empty())
        return runScenario(args);

    const std::size_t conns =
        args.connections > 0 ? args.connections : 1;
    if (args.openLoop && conns != 1) {
        std::fprintf(stderr,
                     "bxt_loadgen: --open-loop uses one connection\n");
        return 2;
    }

    std::vector<ConnResult> results(conns);
    double seconds = 0.0;
    std::string err;
    if (args.openLoop) {
        // The open loop speaks the raw wire to pipeline frames, which
        // the strictly request-response client API cannot express.
        bxt::client::Client client = connectClient(args, err);
        if (!client.connected()) {
            std::fprintf(stderr, "bxt_loadgen: %s\n", err.c_str());
            return 1;
        }
        const std::uint64_t start = bxt::telemetry::nowMicros();
        if (!runOpenLoop(args, client.rawFd(), results[0], err)) {
            std::fprintf(stderr, "bxt_loadgen: %s\n", err.c_str());
            return 1;
        }
        seconds =
            static_cast<double>(bxt::telemetry::nowMicros() - start) /
            1.0e6;
    } else {
        // Closed loop: split --requests across the connections; each
        // connection measures its own samples so one connection's
        // warm-up cannot pollute another's quantiles.
        const std::uint64_t start = bxt::telemetry::nowMicros();
        std::vector<std::thread> threads;
        threads.reserve(conns);
        for (std::size_t c = 0; c < conns; ++c) {
            const std::size_t share =
                args.requests / conns +
                (c < args.requests % conns ? 1 : 0);
            threads.emplace_back(runClosedLoopConn, std::cref(args), c,
                                 share, std::ref(results[c]));
        }
        for (std::thread &t : threads)
            t.join();
        seconds =
            static_cast<double>(bxt::telemetry::nowMicros() - start) /
            1.0e6;
        for (const ConnResult &r : results) {
            if (!r.ok) {
                std::fprintf(stderr, "bxt_loadgen: %s\n", r.err.c_str());
                return 1;
            }
        }
    }

    std::size_t total_requests = 0;
    std::vector<double> steady;
    for (const ConnResult &r : results) {
        total_requests += r.latenciesUs.size();
        const std::vector<double> post =
            steadySamples(r.latenciesUs, args.warmup);
        steady.insert(steady.end(), post.begin(), post.end());
    }

    const double req_rate =
        seconds > 0.0 ? static_cast<double>(total_requests) / seconds
                      : 0.0;
    const double tx_rate = req_rate * static_cast<double>(args.batch);
    const double p50 = bxt::percentile(steady, 50.0);
    const double p95 = bxt::percentile(steady, 95.0);
    const double p99 = bxt::percentile(steady, 99.0);

    std::printf("mode: %s  spec: %s  tx: %u B  batch: %zu  requests: %zu"
                "  connections: %zu\n",
                args.openLoop ? "open-loop" : "closed-loop",
                args.spec.c_str(), args.txBytes, args.batch,
                total_requests, conns);
    std::printf("elapsed: %.3f s  throughput: %.0f req/s  %.0f tx/s\n",
                seconds, req_rate, tx_rate);
    std::printf("latency us (post-warmup): p50 %.1f  p95 %.1f  p99 %.1f\n",
                p50, p95, p99);
    if (conns > 1) {
        for (std::size_t c = 0; c < conns; ++c) {
            const std::vector<double> post =
                steadySamples(results[c].latenciesUs, args.warmup);
            std::printf("  conn %zu: p50 %.1f  p95 %.1f  p99 %.1f\n", c,
                        bxt::percentile(post, 50.0),
                        bxt::percentile(post, 95.0),
                        bxt::percentile(post, 99.0));
        }
    }

    if (!args.jsonPath.empty() &&
        !bxt::writeBenchJson(
            args.jsonPath, "server_loadgen",
            [&](bxt::JsonWriter &w) {
                w.beginObject();
                w.kv("scope", "aggregate");
                w.kv("mode",
                     args.openLoop ? "open-loop" : "closed-loop");
                w.kv("spec", args.spec);
                w.kv("tx_bytes",
                     static_cast<std::uint64_t>(args.txBytes));
                w.kv("batch", static_cast<std::uint64_t>(args.batch));
                w.kv("requests",
                     static_cast<std::uint64_t>(total_requests));
                w.kv("connections", static_cast<std::uint64_t>(conns));
                w.kv("warmup", static_cast<std::uint64_t>(args.warmup));
                w.kv("seconds", seconds);
                w.kv("req_per_s", req_rate);
                w.kv("tx_per_s", tx_rate);
                w.kv("p50_us", p50);
                w.kv("p95_us", p95);
                w.kv("p99_us", p99);
                w.endObject();
                if (conns > 1) {
                    for (std::size_t c = 0; c < conns; ++c) {
                        const std::vector<double> post = steadySamples(
                            results[c].latenciesUs, args.warmup);
                        w.beginObject();
                        w.kv("scope", "connection");
                        w.kv("connection",
                             static_cast<std::uint64_t>(c));
                        w.kv("requests",
                             static_cast<std::uint64_t>(
                                 results[c].latenciesUs.size()));
                        w.kv("p50_us", bxt::percentile(post, 50.0));
                        w.kv("p95_us", bxt::percentile(post, 95.0));
                        w.kv("p99_us", bxt::percentile(post, 99.0));
                        w.endObject();
                    }
                }
            }))
        return 1;

    if (args.assertMinTxRate > 0.0 && tx_rate < args.assertMinTxRate) {
        std::fprintf(stderr,
                     "bxt_loadgen: tx rate %.0f/s below required %.0f/s\n",
                     tx_rate, args.assertMinTxRate);
        return 1;
    }
    return 0;
}
