/**
 * @file
 * bxt_loadgen: drive a running bxtd with encode traffic and report
 * latency percentiles and throughput.
 *
 * Two modes:
 *  - closed-loop (default): one request in flight; each request waits
 *    for its response, so the latency distribution is pure service +
 *    round-trip time.
 *  - open-loop: keep up to --depth request frames in flight on one
 *    connection (pipelined); latencies then include queueing delay.
 *
 * Every request frame carries --batch transactions, so the transaction
 * rate is the request rate times the batch size. Results go to stdout
 * and, with --json, into the unified bench JSON schema
 * (BENCH_server_loadgen.json in CI).
 *
 * Usage:
 *   bxt_loadgen (--tcp HOST:PORT | --unix PATH) [--spec S] [--wires W]
 *               [--tx-bytes B] [--batch N] [--requests N] [--depth D]
 *               [--open-loop | --closed-loop] [--seed X] [--json PATH]
 *               [--assert-min-tx-rate R]
 */

#include <cstdio>
#include <cstdlib>
#include <deque>
#include <string>
#include <vector>

#include "client/client.h"
#include "common/cli.h"
#include "common/rng.h"
#include "common/stats.h"
#include "suite_eval.h"
#include "telemetry/trace.h"

namespace {

struct Args
{
    std::string tcp;
    std::string unixPath;
    std::string spec = "baseline";
    unsigned wires = 32;
    std::uint32_t txBytes = 32;
    std::size_t batch = 64;
    std::size_t requests = 2000;
    std::size_t depth = 16;
    bool openLoop = false;
    std::uint64_t seed = 1;
    std::string jsonPath;
    double assertMinTxRate = 0.0;
};

struct RunResult
{
    double seconds = 0.0;
    std::vector<double> latenciesUs; ///< One sample per request frame.
};

std::vector<std::uint8_t>
randomPayload(const Args &args, bxt::Rng &rng)
{
    std::vector<std::uint8_t> raw(args.batch * args.txBytes);
    for (std::uint8_t &byte : raw)
        byte = static_cast<std::uint8_t>(rng.nextBounded(256));
    return raw;
}

/** Closed loop through the client library: one request in flight. */
bool
runClosedLoop(const Args &args, bxt::client::Client &client,
              RunResult &out, std::string &err)
{
    bxt::Rng rng(args.seed);
    const std::vector<std::uint8_t> raw = randomPayload(args, rng);
    out.latenciesUs.reserve(args.requests);
    const std::uint64_t start = bxt::telemetry::nowMicros();
    for (std::size_t i = 0; i < args.requests; ++i) {
        bxt::client::EncodeResult enc;
        const std::uint64_t t0 = bxt::telemetry::nowMicros();
        if (!client.encode(args.spec, args.txBytes, args.wires, raw, enc,
                           err))
            return false;
        out.latenciesUs.push_back(
            static_cast<double>(bxt::telemetry::nowMicros() - t0));
    }
    out.seconds =
        static_cast<double>(bxt::telemetry::nowMicros() - start) / 1.0e6;
    return true;
}

/**
 * Open loop over the raw wire: keep up to --depth serialized request
 * frames in flight, reading responses as they arrive.
 */
bool
runOpenLoop(const Args &args, int fd, RunResult &out, std::string &err)
{
    bxt::Rng rng(args.seed);
    const std::vector<std::uint8_t> raw = randomPayload(args, rng);

    bxt::wire::Frame request;
    request.opcode = bxt::wire::Opcode::Encode;
    request.spec = args.spec;
    bxt::wire::BodyWriter body;
    body.u32(args.txBytes);
    body.u32(args.wires);
    body.u64(args.batch);
    body.bytes(raw.data(), raw.size());
    request.body = body.take();
    const std::vector<std::uint8_t> frame_bytes =
        bxt::wire::serializeFrame(request);

    bxt::wire::FrameParser parser;
    std::uint8_t buf[64 * 1024];
    std::deque<std::uint64_t> send_times;
    std::size_t sent = 0;
    std::size_t received = 0;
    out.latenciesUs.reserve(args.requests);

    const std::uint64_t start = bxt::telemetry::nowMicros();
    while (received < args.requests) {
        while (sent < args.requests && send_times.size() < args.depth) {
            if (!bxt::net::writeAll(fd, frame_bytes.data(),
                                    frame_bytes.size(), err))
                return false;
            send_times.push_back(bxt::telemetry::nowMicros());
            ++sent;
        }

        bxt::wire::Frame response;
        bxt::wire::WireError parse_err;
        const bxt::wire::FrameParser::Status st =
            parser.next(response, parse_err);
        if (st == bxt::wire::FrameParser::Status::Bad) {
            err = "response stream corrupt: " + parse_err.detail;
            return false;
        }
        if (st == bxt::wire::FrameParser::Status::NeedMore) {
            const long n = bxt::net::readSome(fd, buf, sizeof(buf), err);
            if (n < 0)
                return false;
            if (n == 0) {
                err = "server closed the connection";
                return false;
            }
            parser.feed(buf, static_cast<std::size_t>(n));
            continue;
        }
        if (response.opcode == bxt::wire::Opcode::Error) {
            bxt::wire::ErrorCode code = bxt::wire::ErrorCode::None;
            std::string message;
            bxt::wire::parseErrorFrame(response, code, message);
            err = bxt::wire::errorCodeName(code) + ": " + message;
            return false;
        }
        out.latenciesUs.push_back(static_cast<double>(
            bxt::telemetry::nowMicros() - send_times.front()));
        send_times.pop_front();
        ++received;
    }
    out.seconds =
        static_cast<double>(bxt::telemetry::nowMicros() - start) / 1.0e6;
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    Args args;
    bxt::Cli cli("bxt_loadgen",
                 "load generator for bxtd: encode traffic, latency "
                 "percentiles, throughput");
    cli.add("--tcp", "HOST:PORT", "connect over TCP",
            [&](const std::string &v) { args.tcp = v; });
    cli.add("--unix", "PATH", "connect over a Unix-domain socket",
            [&](const std::string &v) { args.unixPath = v; });
    cli.add("--spec", "S", "codec spec (default baseline)",
            [&](const std::string &v) { args.spec = v; });
    cli.add("--wires", "W", "bus width in bits (default 32)",
            [&](const std::string &v) {
                args.wires = static_cast<unsigned>(
                    std::strtoul(v.c_str(), nullptr, 0));
            });
    cli.add("--tx-bytes", "B", "transaction size (default 32)",
            [&](const std::string &v) {
                args.txBytes = static_cast<std::uint32_t>(
                    std::strtoul(v.c_str(), nullptr, 0));
            });
    cli.add("--batch", "N", "transactions per request frame (default 64)",
            [&](const std::string &v) {
                args.batch = std::strtoul(v.c_str(), nullptr, 0);
            });
    cli.add("--requests", "N", "request frames to send (default 2000)",
            [&](const std::string &v) {
                args.requests = std::strtoul(v.c_str(), nullptr, 0);
            });
    cli.add("--depth", "D", "open-loop frames in flight (default 16)",
            [&](const std::string &v) {
                args.depth = std::strtoul(v.c_str(), nullptr, 0);
            });
    cli.addFlag("--open-loop", "pipeline up to --depth requests",
                [&] { args.openLoop = true; });
    cli.addFlag("--closed-loop", "one request in flight (default)",
                [&] { args.openLoop = false; });
    cli.add("--seed", "X", "payload RNG seed (default 1)",
            [&](const std::string &v) {
                args.seed = std::strtoull(v.c_str(), nullptr, 0);
            });
    cli.add("--json", "PATH", "write bench JSON here",
            [&](const std::string &v) { args.jsonPath = v; });
    cli.add("--assert-min-tx-rate", "R",
            "exit 1 unless the tx/s rate reaches R (CI gate)",
            [&](const std::string &v) {
                args.assertMinTxRate = std::strtod(v.c_str(), nullptr);
            });
    if (!cli.parse(argc, argv))
        return cli.exitCode();

    if (args.tcp.empty() && args.unixPath.empty()) {
        std::fprintf(stderr, "bxt_loadgen: need --tcp or --unix\n");
        return 2;
    }
    if (args.batch == 0 || args.batch > bxt::wire::maxTxPerRequest ||
        args.requests == 0 || args.depth == 0) {
        std::fprintf(stderr, "bxt_loadgen: bad --batch/--requests/--depth\n");
        return 2;
    }

    std::string err;
    bxt::client::Client client;
    if (!args.unixPath.empty()) {
        client = bxt::client::Client::connectUnix(args.unixPath, err);
    } else {
        const std::size_t colon = args.tcp.rfind(':');
        if (colon == std::string::npos) {
            std::fprintf(stderr, "bxt_loadgen: bad --tcp '%s'\n",
                         args.tcp.c_str());
            return 2;
        }
        client = bxt::client::Client::connectTcp(
            args.tcp.substr(0, colon),
            static_cast<int>(
                std::strtol(args.tcp.c_str() + colon + 1, nullptr, 10)),
            err);
    }
    if (!client.connected()) {
        std::fprintf(stderr, "bxt_loadgen: %s\n", err.c_str());
        return 1;
    }

    RunResult result;
    bool ok;
    if (args.openLoop) {
        // The open loop speaks the raw wire to pipeline frames, which
        // the strictly request-response client API cannot express.
        ok = runOpenLoop(args, client.rawFd(), result, err);
    } else {
        ok = runClosedLoop(args, client, result, err);
    }
    if (!ok) {
        std::fprintf(stderr, "bxt_loadgen: %s\n", err.c_str());
        return 1;
    }

    const double req_rate =
        result.seconds > 0.0
            ? static_cast<double>(args.requests) / result.seconds
            : 0.0;
    const double tx_rate = req_rate * static_cast<double>(args.batch);
    const double p50 = bxt::percentile(result.latenciesUs, 50.0);
    const double p95 = bxt::percentile(result.latenciesUs, 95.0);
    const double p99 = bxt::percentile(result.latenciesUs, 99.0);

    std::printf("mode: %s  spec: %s  tx: %u B  batch: %zu  requests: %zu\n",
                args.openLoop ? "open-loop" : "closed-loop",
                args.spec.c_str(), args.txBytes, args.batch,
                args.requests);
    std::printf("elapsed: %.3f s  throughput: %.0f req/s  %.0f tx/s\n",
                result.seconds, req_rate, tx_rate);
    std::printf("latency us: p50 %.1f  p95 %.1f  p99 %.1f\n", p50, p95,
                p99);

    if (!args.jsonPath.empty() &&
        !bxt::writeBenchJson(args.jsonPath, "server_loadgen",
                             [&](bxt::JsonWriter &w) {
                                 w.beginObject();
                                 w.kv("mode", args.openLoop
                                                  ? "open-loop"
                                                  : "closed-loop");
                                 w.kv("spec", args.spec);
                                 w.kv("tx_bytes",
                                      static_cast<std::uint64_t>(
                                          args.txBytes));
                                 w.kv("batch", static_cast<std::uint64_t>(
                                                   args.batch));
                                 w.kv("requests",
                                      static_cast<std::uint64_t>(
                                          args.requests));
                                 w.kv("seconds", result.seconds);
                                 w.kv("req_per_s", req_rate);
                                 w.kv("tx_per_s", tx_rate);
                                 w.kv("p50_us", p50);
                                 w.kv("p95_us", p95);
                                 w.kv("p99_us", p99);
                                 w.endObject();
                             }))
        return 1;

    if (args.assertMinTxRate > 0.0 && tx_rate < args.assertMinTxRate) {
        std::fprintf(stderr,
                     "bxt_loadgen: tx rate %.0f/s below required %.0f/s\n",
                     tx_rate, args.assertMinTxRate);
        return 1;
    }
    return 0;
}
