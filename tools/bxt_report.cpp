/**
 * @file
 * Metrics-snapshot reporting CLI (DESIGN.md §9). Modes:
 *
 *   bxt_report FILE                      pretty-print a snapshot
 *   bxt_report --validate FILE...       schema-check snapshots (exit 1 on
 *                                        the first invalid document)
 *   bxt_report --validate-trace FILE    check a Chrome trace-event file
 *   bxt_report --diff A B               per-instrument numeric diff of
 *                                        two snapshots, or per-spec
 *                                        speedup tables when both files
 *                                        are codec-throughput bench
 *                                        documents (e.g. the per-SIMD-
 *                                        level JSONs from `ci.sh batch`)
 *   bxt_report --assert-overhead PCT OFF.json ON.json
 *                                        compare two codec-throughput
 *                                        bench documents and fail when the
 *                                        serial sweep regressed by more
 *                                        than PCT percent (the `ci.sh
 *                                        metrics` overhead gate)
 *   bxt_report --assert-tx-overhead PCT UNTRACED.json TRACED.json
 *                                        compare two loadgen documents'
 *                                        aggregate tx rates and fail when
 *                                        tracing cost more than PCT
 *                                        percent (the `ci.sh serve`
 *                                        trace-overhead gate)
 *   bxt_report --assert-shard-scaling RATIO BASE.json SHARDED.json
 *                                        compare two loadgen documents'
 *                                        aggregate tx rates and fail when
 *                                        the sharded run is below RATIO
 *                                        times the single-shard baseline
 *                                        (the `ci.sh scenario` shard-
 *                                        scaling gate)
 *   bxt_report --scenario FILE...        aggregate summary + per-tenant
 *                                        table from a server_scenarios
 *                                        bench document (`bxt_loadgen
 *                                        --scenario --json`); documents
 *                                        with scope:"spec" rows (from
 *                                        --adaptive-compare) additionally
 *                                        get a spec-comparison table with
 *                                        a delta-vs-adaptive column
 *   bxt_report --scenario --assert-adaptive-wins FILE...
 *                                        additionally fail unless the
 *                                        adaptive spec row's total
 *                                        ones-on-bus is strictly lower
 *                                        than every fixed spec row's (the
 *                                        `ci.sh adaptive` gate)
 *
 * Every mode accepts either a bare snapshot document or a unified bench
 * JSON document (the snapshot is read from its "metrics" member).
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "common/cli.h"
#include "common/json.h"
#include "common/table.h"

namespace {

using bxt::JsonValue;
using bxt::Table;

bool
readFile(const std::string &path, std::string &out)
{
    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "bxt_report: cannot read %s\n", path.c_str());
        return false;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    out = buffer.str();
    return true;
}

/**
 * Parse @p path and return the snapshot object: the document root for a
 * bare snapshot, or the "metrics" member of a unified bench document.
 */
bool
loadSnapshot(const std::string &path, JsonValue &doc, JsonValue &snapshot)
{
    std::string text;
    if (!readFile(path, text))
        return false;
    std::string error;
    if (!bxt::parseJson(text, doc, &error)) {
        std::fprintf(stderr, "bxt_report: %s: %s\n", path.c_str(),
                     error.c_str());
        return false;
    }
    const JsonValue *metrics = doc.find("metrics");
    snapshot = metrics != nullptr ? *metrics : doc;
    return true;
}

bool
checkMember(const std::string &path, const JsonValue &obj,
            const char *key, JsonValue::Kind kind, const char *what)
{
    const JsonValue *member = obj.find(key);
    if (member == nullptr || member->kind != kind) {
        std::fprintf(stderr, "bxt_report: %s: missing or mistyped %s "
                             "member \"%s\"\n",
                     path.c_str(), what, key);
        return false;
    }
    return true;
}

/** Validate snapshot schema 2 (see src/telemetry/snapshot.h). */
bool
validateSnapshot(const std::string &path, const JsonValue &snapshot)
{
    if (!snapshot.isObject()) {
        std::fprintf(stderr, "bxt_report: %s: snapshot is not an object\n",
                     path.c_str());
        return false;
    }
    if (!checkMember(path, snapshot, "schema", JsonValue::Kind::Number,
                     "snapshot") ||
        !checkMember(path, snapshot, "enabled", JsonValue::Kind::Bool,
                     "snapshot") ||
        !checkMember(path, snapshot, "counters", JsonValue::Kind::Object,
                     "snapshot") ||
        !checkMember(path, snapshot, "gauges", JsonValue::Kind::Object,
                     "snapshot") ||
        !checkMember(path, snapshot, "histograms",
                     JsonValue::Kind::Object, "snapshot"))
        return false;
    if (snapshot.find("schema")->number != 2.0) {
        std::fprintf(stderr, "bxt_report: %s: unsupported schema %g\n",
                     path.c_str(), snapshot.find("schema")->number);
        return false;
    }
    for (const auto &[name, value] : snapshot.find("counters")->object) {
        if (!value.isNumber()) {
            std::fprintf(stderr, "bxt_report: %s: counter %s is not a "
                                 "number\n",
                         path.c_str(), name.c_str());
            return false;
        }
    }
    for (const auto &[name, value] : snapshot.find("gauges")->object) {
        if (!value.isNumber()) {
            std::fprintf(stderr, "bxt_report: %s: gauge %s is not a "
                                 "number\n",
                         path.c_str(), name.c_str());
            return false;
        }
    }
    for (const auto &[name, histo] : snapshot.find("histograms")->object) {
        bool ok = histo.isObject() &&
                  checkMember(path, histo, "kind",
                              JsonValue::Kind::String, "histogram") &&
                  checkMember(path, histo, "sub_bucket_bits",
                              JsonValue::Kind::Number, "histogram") &&
                  checkMember(path, histo, "buckets",
                              JsonValue::Kind::Array, "histogram");
        for (const char *key : {"total", "sum", "mean", "min", "max",
                                "p50", "p95", "p99", "p999"}) {
            ok = ok && checkMember(path, histo, key,
                                   JsonValue::Kind::Number, "histogram");
        }
        if (ok && histo.find("kind")->string != "hdr") {
            std::fprintf(stderr,
                         "bxt_report: %s: histogram %s has unknown kind "
                         "\"%s\"\n",
                         path.c_str(), name.c_str(),
                         histo.find("kind")->string.c_str());
            ok = false;
        }
        // Sparse bucket list: [index, count] pairs of numbers.
        if (ok) {
            for (const JsonValue &pair : histo.find("buckets")->array) {
                if (!pair.isArray() || pair.array.size() != 2 ||
                    !pair.array[0].isNumber() ||
                    !pair.array[1].isNumber()) {
                    std::fprintf(stderr,
                                 "bxt_report: %s: histogram %s has a "
                                 "malformed bucket entry\n",
                                 path.c_str(), name.c_str());
                    ok = false;
                    break;
                }
            }
        }
        if (!ok) {
            std::fprintf(stderr, "bxt_report: %s: bad histogram %s\n",
                         path.c_str(), name.c_str());
            return false;
        }
    }
    return true;
}

/** Validate the shape of a Chrome trace-event file. */
bool
validateTrace(const std::string &path)
{
    std::string text;
    if (!readFile(path, text))
        return false;
    std::string error;
    JsonValue doc;
    if (!bxt::parseJson(text, doc, &error)) {
        std::fprintf(stderr, "bxt_report: %s: %s\n", path.c_str(),
                     error.c_str());
        return false;
    }
    if (!doc.isObject() ||
        !checkMember(path, doc, "traceEvents", JsonValue::Kind::Array,
                     "trace"))
        return false;
    for (const JsonValue &event : doc.find("traceEvents")->array) {
        if (!event.isObject() ||
            !checkMember(path, event, "name", JsonValue::Kind::String,
                         "trace event") ||
            !checkMember(path, event, "ph", JsonValue::Kind::String,
                         "trace event") ||
            !checkMember(path, event, "ts", JsonValue::Kind::Number,
                         "trace event"))
            return false;
    }
    std::printf("%s: valid trace, %zu event(s)\n", path.c_str(),
                doc.find("traceEvents")->array.size());
    return true;
}

int
printSnapshot(const std::string &path)
{
    JsonValue doc;
    JsonValue snapshot;
    if (!loadSnapshot(path, doc, snapshot) ||
        !validateSnapshot(path, snapshot))
        return 1;

    std::printf("%s (enabled: %s)\n", path.c_str(),
                snapshot.find("enabled")->boolean ? "yes" : "no");

    const JsonValue &counters = *snapshot.find("counters");
    if (!counters.object.empty()) {
        Table table({"counter", "value"});
        for (const auto &[name, value] : counters.object)
            table.addRow({name, Table::cell(value.number, 0)});
        std::printf("%s", table.render().c_str());
    }
    const JsonValue &gauges = *snapshot.find("gauges");
    if (!gauges.object.empty()) {
        Table table({"gauge", "value"});
        for (const auto &[name, value] : gauges.object)
            table.addRow({name, Table::cell(value.number, 2)});
        std::printf("\n%s", table.render().c_str());
    }
    const JsonValue &histos = *snapshot.find("histograms");
    if (!histos.object.empty()) {
        Table table({"histogram", "total", "mean", "min", "p50", "p95",
                     "p99", "p999", "max"});
        for (const auto &[name, histo] : histos.object) {
            table.addRow({name,
                          Table::cell(histo.find("total")->number, 0),
                          Table::cell(histo.find("mean")->number, 2),
                          Table::cell(histo.find("min")->number, 0),
                          Table::cell(histo.find("p50")->number, 1),
                          Table::cell(histo.find("p95")->number, 1),
                          Table::cell(histo.find("p99")->number, 1),
                          Table::cell(histo.find("p999")->number, 1),
                          Table::cell(histo.find("max")->number, 0)});
        }
        std::printf("\n%s", table.render().c_str());
    }
    return 0;
}

/** Name -> value map of one numeric snapshot section. */
std::map<std::string, double>
sectionValues(const JsonValue &snapshot, const char *section)
{
    std::map<std::string, double> values;
    for (const auto &[name, value] : snapshot.find(section)->object)
        values.emplace(name, value.number);
    return values;
}

int
diffSnapshots(const std::string &path_a, const std::string &path_b)
{
    JsonValue doc_a;
    JsonValue doc_b;
    JsonValue snap_a;
    JsonValue snap_b;
    if (!loadSnapshot(path_a, doc_a, snap_a) ||
        !validateSnapshot(path_a, snap_a) ||
        !loadSnapshot(path_b, doc_b, snap_b) ||
        !validateSnapshot(path_b, snap_b))
        return 1;

    for (const char *section : {"counters", "gauges"}) {
        const auto a = sectionValues(snap_a, section);
        const auto b = sectionValues(snap_b, section);
        std::map<std::string, std::pair<double, double>> merged;
        for (const auto &[name, value] : a)
            merged[name].first = value;
        for (const auto &[name, value] : b)
            merged[name].second = value;

        Table table({section, "a", "b", "delta"});
        for (const auto &[name, values] : merged) {
            if (values.first == values.second)
                continue;
            table.addRow({name, Table::cell(values.first, 0),
                          Table::cell(values.second, 0),
                          Table::cell(values.second - values.first, 0)});
        }
        if (table.rows() > 0)
            std::printf("%s\n", table.render().c_str());
    }
    return 0;
}

/** One (spec, batch_tx) row merged from two bench documents. */
struct BenchDiffRow {
    bool inA = false;
    bool inB = false;
    std::string levelA;
    std::string levelB;
    double encodeA = 0.0;
    double encodeB = 0.0;
    double decodeA = 0.0;
    double decodeB = 0.0;
};

using BenchDiffKey = std::pair<std::string, double>;

/**
 * Fold one document's codec rows into @p merged. simd_codec rows carry
 * separate encode/decode rates; batch_codec / scalar_codec rows carry a
 * single round-trip rate, stored in the encode slot.
 */
void
collectBenchRows(const JsonValue &doc, bool is_b,
                 std::map<BenchDiffKey, BenchDiffRow> &simd_rows,
                 std::map<BenchDiffKey, BenchDiffRow> &batch_rows)
{
    for (const JsonValue &row : doc.find("results")->array) {
        const JsonValue *mode = row.find("mode");
        const JsonValue *spec = row.find("spec");
        const JsonValue *batch = row.find("batch_tx");
        if (mode == nullptr || spec == nullptr || batch == nullptr)
            continue;
        const BenchDiffKey key{spec->string, batch->number};
        if (mode->string == "simd_codec") {
            BenchDiffRow &out = simd_rows[key];
            const JsonValue *level = row.find("simd_level");
            const JsonValue *enc = row.find("encode_tx_per_s");
            const JsonValue *dec = row.find("decode_tx_per_s");
            std::string &slot_level = is_b ? out.levelB : out.levelA;
            double &slot_enc = is_b ? out.encodeB : out.encodeA;
            double &slot_dec = is_b ? out.decodeB : out.decodeA;
            // Keep the fastest encode row per (spec, batch): an unforced
            // sweep emits one row per dispatch level.
            if (enc != nullptr &&
                (!(is_b ? out.inB : out.inA) || enc->number > slot_enc)) {
                slot_enc = enc->number;
                slot_dec = dec != nullptr ? dec->number : 0.0;
                slot_level = level != nullptr ? level->string : "?";
                (is_b ? out.inB : out.inA) = true;
            }
        } else if (mode->string == "batch_codec" ||
                   mode->string == "scalar_codec") {
            BenchDiffRow &out = batch_rows[key];
            const JsonValue *rate = row.find("tx_per_s");
            if (rate != nullptr) {
                (is_b ? out.encodeB : out.encodeA) = rate->number;
                (is_b ? out.inB : out.inA) = true;
            }
        }
    }
}

std::string
benchLevelSummary(const JsonValue &doc)
{
    for (const JsonValue &row : doc.find("results")->array) {
        const JsonValue *mode = row.find("mode");
        if (mode == nullptr || mode->string != "simd_info")
            continue;
        const JsonValue *best = row.find("best_level");
        const JsonValue *forced = row.find("forced");
        std::string summary =
            best != nullptr ? best->string : std::string("?");
        if (forced != nullptr && forced->boolean)
            summary += " (forced)";
        return summary;
    }
    return "?";
}

/**
 * Per-spec speedup tables between two codec-throughput bench documents —
 * typically the per-SIMD-level JSONs uploaded by `ci.sh batch`
 * (BENCH_codec_throughput.word.json vs .avx512.json).
 */
int
diffBenchDocs(const std::string &path_a, const JsonValue &doc_a,
              const std::string &path_b, const JsonValue &doc_b)
{
    std::map<BenchDiffKey, BenchDiffRow> simd_rows;
    std::map<BenchDiffKey, BenchDiffRow> batch_rows;
    collectBenchRows(doc_a, false, simd_rows, batch_rows);
    collectBenchRows(doc_b, true, simd_rows, batch_rows);

    std::printf("a: %s (best level %s)\n", path_a.c_str(),
                benchLevelSummary(doc_a).c_str());
    std::printf("b: %s (best level %s)\n\n", path_b.c_str(),
                benchLevelSummary(doc_b).c_str());

    std::size_t unmatched = 0;
    if (!simd_rows.empty()) {
        Table table({"spec", "batch", "levels", "enc a Mtx/s",
                     "enc b Mtx/s", "enc b/a", "dec a Mtx/s",
                     "dec b Mtx/s", "dec b/a"});
        for (const auto &[key, row] : simd_rows) {
            if (!row.inA || !row.inB) {
                ++unmatched;
                continue;
            }
            table.addRow(
                {key.first, Table::cell(key.second, 0),
                 row.levelA + "->" + row.levelB,
                 Table::cell(row.encodeA / 1e6, 1),
                 Table::cell(row.encodeB / 1e6, 1),
                 Table::cell(row.encodeA > 0.0
                                 ? row.encodeB / row.encodeA
                                 : 0.0,
                             2),
                 Table::cell(row.decodeA / 1e6, 1),
                 Table::cell(row.decodeB / 1e6, 1),
                 Table::cell(row.decodeA > 0.0
                                 ? row.decodeB / row.decodeA
                                 : 0.0,
                             2)});
        }
        if (table.rows() > 0)
            std::printf("%s\n", table.render().c_str());
    }
    if (!batch_rows.empty()) {
        Table table({"spec", "batch", "rt a Mtx/s", "rt b Mtx/s",
                     "rt b/a"});
        for (const auto &[key, row] : batch_rows) {
            if (!row.inA || !row.inB) {
                ++unmatched;
                continue;
            }
            table.addRow(
                {key.first, Table::cell(key.second, 0),
                 Table::cell(row.encodeA / 1e6, 1),
                 Table::cell(row.encodeB / 1e6, 1),
                 Table::cell(row.encodeA > 0.0
                                 ? row.encodeB / row.encodeA
                                 : 0.0,
                             2)});
        }
        if (table.rows() > 0)
            std::printf("%s\n", table.render().c_str());
    }
    if (unmatched > 0)
        std::printf("(%zu rows present in only one file were skipped)\n",
                    unmatched);
    return 0;
}

/**
 * --diff entry point: two codec-throughput bench documents (detected by
 * their "results" array) get per-spec speedup tables; anything else falls
 * back to the metrics-snapshot diff.
 */
int
diffFiles(const std::string &path_a, const std::string &path_b)
{
    std::string text_a;
    std::string text_b;
    if (!readFile(path_a, text_a) || !readFile(path_b, text_b))
        return 1;
    JsonValue doc_a;
    JsonValue doc_b;
    std::string error;
    if (!bxt::parseJson(text_a, doc_a, &error)) {
        std::fprintf(stderr, "bxt_report: %s: %s\n", path_a.c_str(),
                     error.c_str());
        return 1;
    }
    if (!bxt::parseJson(text_b, doc_b, &error)) {
        std::fprintf(stderr, "bxt_report: %s: %s\n", path_b.c_str(),
                     error.c_str());
        return 1;
    }
    // Only documents that actually carry per-spec codec rows take the
    // bench path; other unified bench JSONs (e.g. fig15) keep the
    // snapshot diff of their embedded "metrics" member.
    const auto has_codec_rows = [](const JsonValue &doc) {
        const JsonValue *results = doc.find("results");
        if (results == nullptr || !results->isArray())
            return false;
        for (const JsonValue &row : results->array) {
            const JsonValue *mode = row.find("mode");
            if (mode != nullptr &&
                (mode->string == "simd_codec" ||
                 mode->string == "batch_codec" ||
                 mode->string == "scalar_codec"))
                return true;
        }
        return false;
    };
    if (has_codec_rows(doc_a) && has_codec_rows(doc_b))
        return diffBenchDocs(path_a, doc_a, path_b, doc_b);
    return diffSnapshots(path_a, path_b);
}

/**
 * --scenario: render a server_scenarios bench document (bxt_loadgen
 * --scenario --json) as the aggregate summary plus a per-tenant table,
 * busiest tenants first. Documents carrying scope:"spec" rows (written by
 * `bxt_loadgen --adaptive-compare`) additionally get a spec-comparison
 * table with each fixed spec's ones-on-bus delta versus the adaptive row;
 * with @p assert_adaptive_wins the call fails unless the adaptive row
 * strictly beats every fixed row on total ones-on-bus.
 */
int
reportScenario(const std::string &path, bool assert_adaptive_wins)
{
    std::string text;
    if (!readFile(path, text))
        return 1;
    std::string error;
    JsonValue doc;
    if (!bxt::parseJson(text, doc, &error)) {
        std::fprintf(stderr, "bxt_report: %s: %s\n", path.c_str(),
                     error.c_str());
        return 1;
    }
    const JsonValue *results = doc.find("results");
    if (results == nullptr || !results->isArray()) {
        std::fprintf(stderr, "bxt_report: %s: no results array\n",
                     path.c_str());
        return 1;
    }

    const auto number = [](const JsonValue &row, const char *key) {
        const JsonValue *member = row.find(key);
        return member != nullptr && member->isNumber() ? member->number
                                                       : 0.0;
    };
    const auto string_of = [](const JsonValue &row, const char *key) {
        const JsonValue *member = row.find(key);
        return member != nullptr && member->isString() ? member->string
                                                       : std::string("?");
    };

    std::vector<const JsonValue *> tenants;
    std::vector<const JsonValue *> specs;
    const JsonValue *aggregate = nullptr;
    for (const JsonValue &row : results->array) {
        const std::string scope = string_of(row, "scope");
        if (scope == "aggregate" && row.find("scenario") != nullptr)
            aggregate = &row;
        else if (scope == "tenant")
            tenants.push_back(&row);
        else if (scope == "spec")
            specs.push_back(&row);
    }
    if (aggregate == nullptr || tenants.empty()) {
        std::fprintf(stderr, "bxt_report: %s: not a server_scenarios "
                             "document\n",
                     path.c_str());
        return 1;
    }

    std::printf("scenario %s: %g tenants, alpha %g, %g connections, "
                "paced %s\n",
                string_of(*aggregate, "scenario").c_str(),
                number(*aggregate, "tenants"), number(*aggregate, "alpha"),
                number(*aggregate, "connections"),
                aggregate->find("paced") != nullptr &&
                        aggregate->find("paced")->boolean
                    ? "yes"
                    : "no");
    std::printf("%.0f requests in %.3f s: %.0f req/s, %.0f tx/s; "
                "p50/p95/p99 %.1f/%.1f/%.1f us; ones removed %.2f %%\n\n",
                number(*aggregate, "requests"),
                number(*aggregate, "seconds"),
                number(*aggregate, "req_per_s"),
                number(*aggregate, "tx_per_s"),
                number(*aggregate, "p50_us"), number(*aggregate, "p95_us"),
                number(*aggregate, "p99_us"),
                number(*aggregate, "ones_removed_pct"));

    std::sort(tenants.begin(), tenants.end(),
              [&](const JsonValue *a, const JsonValue *b) {
                  return number(*a, "requests") > number(*b, "requests");
              });
    Table table({"tenant", "spec", "txB", "weight", "reqs", "txs",
                 "p50 us", "p95 us", "p99 us", "ones rm%"});
    for (const JsonValue *row : tenants) {
        table.addRow({Table::cell(number(*row, "tenant"), 0),
                      string_of(*row, "spec"),
                      Table::cell(number(*row, "tx_bytes"), 0),
                      Table::cell(number(*row, "weight"), 3),
                      Table::cell(number(*row, "requests"), 0),
                      Table::cell(number(*row, "txs"), 0),
                      Table::cell(number(*row, "p50_us"), 1),
                      Table::cell(number(*row, "p95_us"), 1),
                      Table::cell(number(*row, "p99_us"), 1),
                      Table::cell(number(*row, "ones_removed_pct"), 2)});
    }
    std::printf("%s", table.render().c_str());

    if (specs.empty()) {
        if (assert_adaptive_wins) {
            std::fprintf(stderr,
                         "bxt_report: %s: --assert-adaptive-wins needs "
                         "scope:\"spec\" rows (run bxt_loadgen with "
                         "--adaptive-compare)\n",
                         path.c_str());
            return 1;
        }
        return 0;
    }

    // Spec-comparison rows: each pass replayed the identical request
    // stream, so total ones-on-bus is directly comparable. The adaptive
    // row (spec starting with "adaptive") is the reference for the delta
    // column.
    const JsonValue *adaptive_row = nullptr;
    for (const JsonValue *row : specs) {
        if (string_of(*row, "spec").rfind("adaptive", 0) == 0) {
            adaptive_row = row;
            break;
        }
    }
    const double adaptive_out =
        adaptive_row != nullptr ? number(*adaptive_row, "ones_out") : 0.0;
    const double adaptive_in =
        adaptive_row != nullptr ? number(*adaptive_row, "ones_in") : 0.0;

    Table spec_table({"spec", "ones in", "ones out", "rm%",
                      "vs adaptive"});
    bool adaptive_wins = adaptive_row != nullptr;
    double best_fixed_out = 0.0;
    std::string best_fixed_spec;
    for (const JsonValue *row : specs) {
        const std::string spec = string_of(*row, "spec");
        const double out_ones = number(*row, "ones_out");
        const bool is_adaptive = row == adaptive_row;
        std::string delta = "-";
        if (adaptive_row != nullptr && !is_adaptive) {
            // Positive: the fixed spec put more ones on the bus than
            // adaptive did (adaptive wins this row).
            const double pct =
                adaptive_out > 0.0
                    ? (out_ones - adaptive_out) / adaptive_out * 100.0
                    : 0.0;
            char buf[32];
            std::snprintf(buf, sizeof buf, "%+.2f%%", pct);
            delta = buf;
            if (out_ones <= adaptive_out)
                adaptive_wins = false;
            if (best_fixed_spec.empty() || out_ones < best_fixed_out) {
                best_fixed_out = out_ones;
                best_fixed_spec = spec;
            }
            // Every pass replays the identical stream; differing input
            // ones means the document is inconsistent.
            if (adaptive_in > 0.0 &&
                number(*row, "ones_in") != adaptive_in) {
                std::fprintf(stderr,
                             "bxt_report: %s: spec row '%s' saw "
                             "ones_in %.0f but the adaptive row saw "
                             "%.0f (not the same stream)\n",
                             path.c_str(), spec.c_str(),
                             number(*row, "ones_in"), adaptive_in);
                return 1;
            }
        }
        spec_table.addRow({spec, Table::cell(number(*row, "ones_in"), 0),
                           Table::cell(out_ones, 0),
                           Table::cell(number(*row, "ones_removed_pct"),
                                       2),
                           delta});
    }
    std::printf("\n%s", spec_table.render().c_str());
    if (adaptive_row != nullptr && !best_fixed_spec.empty())
        std::printf("adaptive vs best fixed (%s): %+.0f ones "
                    "(%+.2f %%)\n",
                    best_fixed_spec.c_str(), adaptive_out - best_fixed_out,
                    best_fixed_out > 0.0
                        ? (adaptive_out - best_fixed_out) /
                              best_fixed_out * 100.0
                        : 0.0);

    if (assert_adaptive_wins) {
        if (adaptive_row == nullptr) {
            std::fprintf(stderr,
                         "bxt_report: %s: --assert-adaptive-wins: no "
                         "adaptive spec row\n",
                         path.c_str());
            return 1;
        }
        if (specs.size() < 2) {
            std::fprintf(stderr,
                         "bxt_report: %s: --assert-adaptive-wins: no "
                         "fixed spec rows to compare against\n",
                         path.c_str());
            return 1;
        }
        if (!adaptive_wins) {
            std::fprintf(stderr,
                         "bxt_report: %s: adaptive ones-on-bus %.0f does "
                         "not strictly beat every fixed spec (best fixed "
                         "'%s' at %.0f)\n",
                         path.c_str(), adaptive_out,
                         best_fixed_spec.c_str(), best_fixed_out);
            return 1;
        }
        std::printf("adaptive wins: ones-on-bus strictly below every "
                    "fixed spec\n");
    }
    return 0;
}

/** Serial sweep seconds from a codec-throughput bench document. */
bool
serialSeconds(const std::string &path, double &seconds)
{
    std::string text;
    if (!readFile(path, text))
        return false;
    std::string error;
    JsonValue doc;
    if (!bxt::parseJson(text, doc, &error)) {
        std::fprintf(stderr, "bxt_report: %s: %s\n", path.c_str(),
                     error.c_str());
        return false;
    }
    const JsonValue *results = doc.find("results");
    if (results == nullptr || !results->isArray()) {
        std::fprintf(stderr, "bxt_report: %s: no results array\n",
                     path.c_str());
        return false;
    }
    for (const JsonValue &row : results->array) {
        const JsonValue *mode = row.find("mode");
        const JsonValue *secs = row.find("seconds");
        if (mode != nullptr && mode->string == "serial" &&
            secs != nullptr && secs->isNumber()) {
            seconds = secs->number;
            return true;
        }
    }
    std::fprintf(stderr, "bxt_report: %s: no serial sweep row\n",
                 path.c_str());
    return false;
}

/** Aggregate tx_per_s from a bxt_loadgen --json document. */
bool
aggregateTxRate(const std::string &path, double &tx_per_s)
{
    std::string text;
    if (!readFile(path, text))
        return false;
    std::string error;
    JsonValue doc;
    if (!bxt::parseJson(text, doc, &error)) {
        std::fprintf(stderr, "bxt_report: %s: %s\n", path.c_str(),
                     error.c_str());
        return false;
    }
    const JsonValue *results = doc.find("results");
    if (results == nullptr || !results->isArray()) {
        std::fprintf(stderr, "bxt_report: %s: no results array\n",
                     path.c_str());
        return false;
    }
    for (const JsonValue &row : results->array) {
        const JsonValue *scope = row.find("scope");
        const JsonValue *rate = row.find("tx_per_s");
        if (scope != nullptr && scope->string == "aggregate" &&
            rate != nullptr && rate->isNumber()) {
            tx_per_s = rate->number;
            return true;
        }
    }
    std::fprintf(stderr, "bxt_report: %s: no aggregate tx_per_s row\n",
                 path.c_str());
    return false;
}

/**
 * --assert-tx-overhead: fail when the traced loadgen run's aggregate
 * transaction rate is more than @p limit_pct percent below the untraced
 * baseline (the `ci.sh serve` trace-overhead gate).
 */
int
assertTxOverhead(double limit_pct, const std::string &base_path,
                 const std::string &traced_path)
{
    double base = 0.0;
    double traced = 0.0;
    if (!aggregateTxRate(base_path, base) ||
        !aggregateTxRate(traced_path, traced))
        return 1;
    if (base <= 0.0) {
        std::fprintf(stderr, "bxt_report: %s: non-positive tx rate\n",
                     base_path.c_str());
        return 1;
    }
    const double overhead_pct = (base - traced) / base * 100.0;
    std::printf("aggregate tx rate: %.0f tx/s untraced, %.0f tx/s traced "
                "-> %+.2f %% slower (limit %.2f %%)\n",
                base, traced, overhead_pct, limit_pct);
    if (overhead_pct > limit_pct) {
        std::fprintf(stderr, "bxt_report: trace overhead %.2f %% exceeds "
                             "limit %.2f %%\n",
                     overhead_pct, limit_pct);
        return 1;
    }
    return 0;
}

/**
 * --assert-shard-scaling: fail unless the sharded loadgen run's
 * aggregate transaction rate is at least @p min_ratio times the
 * single-shard baseline's (the `ci.sh scenario` shard-scaling gate:
 * shared-nothing shards must actually buy throughput).
 */
int
assertShardScaling(double min_ratio, const std::string &base_path,
                   const std::string &sharded_path)
{
    double base = 0.0;
    double sharded = 0.0;
    if (!aggregateTxRate(base_path, base) ||
        !aggregateTxRate(sharded_path, sharded))
        return 1;
    if (base <= 0.0) {
        std::fprintf(stderr, "bxt_report: %s: non-positive tx rate\n",
                     base_path.c_str());
        return 1;
    }
    const double ratio = sharded / base;
    std::printf("aggregate tx rate: %.0f tx/s single-shard, %.0f tx/s "
                "sharded -> %.2fx scaling (floor %.2fx)\n",
                base, sharded, ratio, min_ratio);
    if (ratio < min_ratio) {
        std::fprintf(stderr, "bxt_report: shard scaling %.2fx below "
                             "floor %.2fx\n",
                     ratio, min_ratio);
        return 1;
    }
    return 0;
}

int
assertOverhead(double limit_pct, const std::string &off_path,
               const std::string &on_path)
{
    double off = 0.0;
    double on = 0.0;
    if (!serialSeconds(off_path, off) || !serialSeconds(on_path, on))
        return 1;
    if (off <= 0.0) {
        std::fprintf(stderr, "bxt_report: %s: non-positive serial time\n",
                     off_path.c_str());
        return 1;
    }
    const double overhead_pct = (on - off) / off * 100.0;
    std::printf("serial sweep: %.3f s off, %.3f s on -> %+.2f %% "
                "(limit %.2f %%)\n",
                off, on, overhead_pct, limit_pct);
    if (overhead_pct > limit_pct) {
        std::fprintf(stderr, "bxt_report: telemetry overhead %.2f %% "
                             "exceeds limit %.2f %%\n",
                     overhead_pct, limit_pct);
        return 1;
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    bool validate = false;
    bool validate_trace = false;
    bool diff = false;
    bool scenario = false;
    bool assert_adaptive_wins = false;
    bool overhead = false;
    bool tx_overhead = false;
    bool shard_scaling = false;
    double overhead_limit = 0.0;
    double tx_overhead_limit = 0.0;
    double shard_scaling_floor = 0.0;
    std::vector<std::string> files;

    bxt::Cli cli("bxt_report",
                 "pretty-print, validate, and diff bxt metrics snapshots");
    cli.addFlag("--validate", "schema-check the given snapshot files",
                [&] { validate = true; });
    cli.addFlag("--validate-trace",
                "check the given Chrome trace-event files",
                [&] { validate_trace = true; });
    cli.addFlag("--diff",
                "diff two snapshots, or two bench JSONs as per-spec "
                "speedup tables (two files expected)",
                [&] { diff = true; });
    cli.addFlag("--scenario",
                "per-tenant table from a server_scenarios bench JSON",
                [&] { scenario = true; });
    cli.addFlag("--assert-adaptive-wins",
                "with --scenario: fail unless the adaptive spec row's "
                "ones-on-bus strictly beats every fixed spec row's",
                [&] { assert_adaptive_wins = true; });
    cli.add("--assert-overhead", "PCT",
            "fail when ON.json's serial sweep is more than PCT percent "
            "slower than OFF.json's (two bench files expected)",
            [&](const std::string &v) {
                overhead = true;
                overhead_limit = std::strtod(v.c_str(), nullptr);
            });
    cli.add("--assert-tx-overhead", "PCT",
            "fail when TRACED.json's aggregate tx rate is more than PCT "
            "percent below UNTRACED.json's (two loadgen files expected)",
            [&](const std::string &v) {
                tx_overhead = true;
                tx_overhead_limit = std::strtod(v.c_str(), nullptr);
            });
    cli.add("--assert-shard-scaling", "RATIO",
            "fail when SHARDED.json's aggregate tx rate is below RATIO "
            "times BASE.json's (two loadgen files expected)",
            [&](const std::string &v) {
                shard_scaling = true;
                shard_scaling_floor = std::strtod(v.c_str(), nullptr);
            });
    cli.addPositional("FILE", "snapshot / bench / trace JSON file(s)",
                      [&](const std::string &v) { files.push_back(v); });
    if (!cli.parse(argc, argv))
        return cli.exitCode();

    if (files.empty()) {
        std::fprintf(stderr, "bxt_report: no input files\n\n%s",
                     cli.usage().c_str());
        return 2;
    }

    if (overhead) {
        if (files.size() != 2) {
            std::fprintf(stderr, "bxt_report: --assert-overhead needs "
                                 "OFF.json and ON.json\n");
            return 2;
        }
        return assertOverhead(overhead_limit, files[0], files[1]);
    }
    if (tx_overhead) {
        if (files.size() != 2) {
            std::fprintf(stderr, "bxt_report: --assert-tx-overhead needs "
                                 "UNTRACED.json and TRACED.json\n");
            return 2;
        }
        return assertTxOverhead(tx_overhead_limit, files[0], files[1]);
    }
    if (shard_scaling) {
        if (files.size() != 2) {
            std::fprintf(stderr,
                         "bxt_report: --assert-shard-scaling needs "
                         "BASE.json and SHARDED.json\n");
            return 2;
        }
        return assertShardScaling(shard_scaling_floor, files[0],
                                  files[1]);
    }
    if (scenario) {
        for (const std::string &file : files) {
            if (const int status =
                    reportScenario(file, assert_adaptive_wins))
                return status;
        }
        return 0;
    }
    if (assert_adaptive_wins) {
        std::fprintf(stderr, "bxt_report: --assert-adaptive-wins needs "
                             "--scenario\n");
        return 2;
    }
    if (diff) {
        if (files.size() != 2) {
            std::fprintf(stderr,
                         "bxt_report: --diff needs exactly two files\n");
            return 2;
        }
        return diffFiles(files[0], files[1]);
    }
    if (validate_trace) {
        for (const std::string &file : files) {
            if (!validateTrace(file))
                return 1;
        }
        return 0;
    }
    if (validate) {
        for (const std::string &file : files) {
            JsonValue doc;
            JsonValue snapshot;
            if (!loadSnapshot(file, doc, snapshot) ||
                !validateSnapshot(file, snapshot))
                return 1;
            std::printf("%s: valid snapshot (schema 2)\n", file.c_str());
        }
        return 0;
    }

    for (const std::string &file : files) {
        if (const int status = printSnapshot(file))
            return status;
    }
    return 0;
}
