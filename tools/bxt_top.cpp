/**
 * @file
 * bxt_top: live terminal dashboard for a running bxtd. Polls the
 * Snapshot wire opcode (the full schema-2 telemetry document plus the
 * server's own clock) and renders rates and windowed latency quantiles
 * from consecutive-poll deltas:
 *
 *  - aggregate request/error rates, queue depth, worker shards;
 *  - per-shard rows (active connections, request/transaction rates,
 *    output backlog, busy rejects) from the `bxt.server.shard.<i>.*`
 *    breakdown the sharded server publishes — the kernel's
 *    SO_REUSEPORT load balance made visible (--no-shards collapses the
 *    table back to the aggregate line);
 *  - request_us p50/p95/p99 over the poll window, reconstructed from
 *    the HDR histogram's sparse bucket deltas (the same log-bucket
 *    geometry as telemetry::Histo, so no raw samples cross the wire);
 *  - per-stream (tenant) request/transaction rates, ones-on-bus
 *    removal, the windowed value statistics (zero-word fraction,
 *    XOR toggle weight) the adaptive-codec sensors export, and — for
 *    streams running the `adaptive` spec — the concrete codec the
 *    per-stream controller currently selects plus its switch count;
 *  - per-spec ones-on-bus deltas;
 *  - span-ring health (recorded/dropped) for the tracing pipeline.
 *
 * Rates use the server's uptime_us delta, not the local clock, so a
 * stalled poller never inflates them.
 *
 * Usage:
 *   bxt_top (--tcp HOST:PORT | --unix PATH) [--interval-ms N]
 *           [--once] [--count N] [--no-clear] [--no-shards]
 */

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "client/client.h"
#include "common/cli.h"
#include "common/json.h"
#include "telemetry/metrics.h"

namespace {

struct Args
{
    std::string tcp;
    std::string unixPath;
    long intervalMs = 1000;
    bool once = false;
    std::size_t count = 0; ///< 0 = run until interrupted.
    bool noClear = false;
    bool noShards = false; ///< Collapse the per-shard table.
};

/** One polled snapshot, flattened for delta computation. */
struct Sample
{
    double uptimeUs = 0.0;
    std::map<std::string, double> counters;
    std::map<std::string, double> gauges;
    /** Histogram name -> sparse bucket index -> count. */
    std::map<std::string, std::map<std::size_t, double>> histograms;
};

bool
parseSample(const std::string &json, Sample &out, std::string &err)
{
    bxt::JsonValue root;
    if (!bxt::parseJson(json, root, &err))
        return false;
    const bxt::JsonValue *uptime = root.find("uptime_us");
    const bxt::JsonValue *metrics = root.find("metrics");
    if (uptime == nullptr || !uptime->isNumber() || metrics == nullptr ||
        !metrics->isObject()) {
        err = "snapshot document missing uptime_us/metrics";
        return false;
    }
    out.uptimeUs = uptime->number;
    if (const bxt::JsonValue *counters = metrics->find("counters")) {
        for (const auto &[name, value] : counters->object) {
            if (value.isNumber())
                out.counters[name] = value.number;
        }
    }
    if (const bxt::JsonValue *gauges = metrics->find("gauges")) {
        for (const auto &[name, value] : gauges->object) {
            if (value.isNumber())
                out.gauges[name] = value.number;
        }
    }
    if (const bxt::JsonValue *histos = metrics->find("histograms")) {
        for (const auto &[name, histo] : histos->object) {
            const bxt::JsonValue *buckets = histo.find("buckets");
            if (buckets == nullptr || !buckets->isArray())
                continue;
            std::map<std::size_t, double> &dst = out.histograms[name];
            for (const bxt::JsonValue &pair : buckets->array) {
                if (pair.isArray() && pair.array.size() == 2 &&
                    pair.array[0].isNumber() && pair.array[1].isNumber()) {
                    dst[static_cast<std::size_t>(pair.array[0].number)] =
                        pair.array[1].number;
                }
            }
        }
    }
    return true;
}

double
counterOf(const Sample &sample, const std::string &name)
{
    const auto it = sample.counters.find(name);
    return it == sample.counters.end() ? 0.0 : it->second;
}

double
gaugeOf(const Sample &sample, const std::string &name)
{
    const auto it = sample.gauges.find(name);
    return it == sample.gauges.end() ? 0.0 : it->second;
}

/** Counter increase per second across the poll window (floored at 0). */
double
rateOf(const Sample &cur, const Sample &prev, const std::string &name,
       double dt_s)
{
    if (dt_s <= 0.0)
        return 0.0;
    const double delta = counterOf(cur, name) - counterOf(prev, name);
    return delta > 0.0 ? delta / dt_s : 0.0;
}

/**
 * q-quantile of the samples a histogram gained between two polls,
 * reconstructed from its sparse bucket deltas with the shared
 * telemetry::Histo bucket geometry (linear interpolation within the
 * holding bucket, exactly like Histo::quantile). Returns 0 with
 * @p total_out = 0 when the window saw no samples.
 */
double
windowedQuantile(const Sample &cur, const Sample &prev,
                 const std::string &name, double q, double &total_out)
{
    using bxt::telemetry::Histo;
    const auto cur_it = cur.histograms.find(name);
    total_out = 0.0;
    if (cur_it == cur.histograms.end())
        return 0.0;
    const auto prev_it = prev.histograms.find(name);
    std::vector<std::pair<std::size_t, double>> delta;
    delta.reserve(cur_it->second.size());
    for (const auto &[index, count] : cur_it->second) {
        double base = 0.0;
        if (prev_it != prev.histograms.end()) {
            const auto p = prev_it->second.find(index);
            if (p != prev_it->second.end())
                base = p->second;
        }
        if (count - base > 0.0)
            delta.emplace_back(index, count - base);
    }
    double total = 0.0;
    for (const auto &[index, count] : delta)
        total += count;
    total_out = total;
    if (total <= 0.0)
        return 0.0;
    const double target =
        std::max(1.0, std::ceil(q * total));
    double cum = 0.0;
    for (const auto &[index, count] : delta) {
        cum += count;
        if (cum >= target) {
            const double lo =
                static_cast<double>(Histo::bucketLowerBound(index));
            const double width =
                static_cast<double>(Histo::bucketWidth(index));
            const double frac = (target - (cum - count)) / count;
            return lo + width * frac;
        }
    }
    const std::size_t last = delta.back().first;
    return static_cast<double>(Histo::bucketLowerBound(last) +
                               Histo::bucketWidth(last));
}

double
removedPct(double ones_in, double ones_out)
{
    if (ones_in <= 0.0)
        return 0.0;
    return 100.0 * (1.0 - ones_out / ones_in);
}

/** "bxt.server.stream.<id>.<leaf>" -> id, or -1 when not a stream name. */
long
streamIdOf(const std::string &name, std::string &leaf)
{
    static const std::string prefix = "bxt.server.stream.";
    if (name.rfind(prefix, 0) != 0)
        return -1;
    const std::size_t dot = name.find('.', prefix.size());
    if (dot == std::string::npos)
        return -1;
    const std::string id_text = name.substr(prefix.size(),
                                            dot - prefix.size());
    char *end = nullptr;
    const long id = std::strtol(id_text.c_str(), &end, 10);
    if (end == nullptr || *end != '\0' || id <= 0)
        return -1;
    leaf = name.substr(dot + 1);
    return id;
}

/** "bxt.server.<spec>.ones_in" -> spec, excluding the stream and shard
 *  subtrees (those are breakdown copies, not specs). */
bool
specOf(const std::string &name, std::string &spec)
{
    static const std::string prefix = "bxt.server.";
    static const std::string suffix = ".ones_in";
    if (name.rfind(prefix, 0) != 0 || name.size() <= prefix.size() +
                                          suffix.size())
        return false;
    if (name.compare(name.size() - suffix.size(), suffix.size(),
                     suffix) != 0)
        return false;
    spec = name.substr(prefix.size(),
                       name.size() - prefix.size() - suffix.size());
    return !spec.empty() && spec.rfind("stream.", 0) != 0 &&
           spec.rfind("shard.", 0) != 0;
}

/** "bxt.server.shard.<i>.<leaf>" -> i, or -1 when not a shard name. */
long
shardIdOf(const std::string &name)
{
    static const std::string prefix = "bxt.server.shard.";
    if (name.rfind(prefix, 0) != 0)
        return -1;
    const std::size_t dot = name.find('.', prefix.size());
    if (dot == std::string::npos || dot == prefix.size())
        return -1;
    const std::string id_text =
        name.substr(prefix.size(), dot - prefix.size());
    char *end = nullptr;
    const long id = std::strtol(id_text.c_str(), &end, 10);
    if (end == nullptr || *end != '\0' || id < 0)
        return -1;
    return id;
}

/**
 * The concrete codec stream @p id's adaptive controller currently
 * selects, read back from the one-hot choice gauges
 * (`bxt.server.stream.<id>.adaptive.choice.<spec>`, the active one at
 * 1). "-" when the stream does not run an adaptive spec.
 */
std::string
adaptiveChoiceOf(const Sample &sample, const std::string &stream_base)
{
    const std::string prefix = stream_base + ".adaptive.choice.";
    for (auto it = sample.gauges.lower_bound(prefix);
         it != sample.gauges.end() && it->first.rfind(prefix, 0) == 0;
         ++it) {
        if (it->second != 0.0)
            return it->first.substr(prefix.size());
    }
    return "-";
}

void
render(const Args &args, const Sample &cur, const Sample &prev,
       bool clear)
{
    const double dt_s = (cur.uptimeUs - prev.uptimeUs) / 1.0e6;
    if (clear)
        std::printf("\x1b[2J\x1b[H");

    const std::string target =
        args.unixPath.empty() ? "tcp://" + args.tcp
                              : "unix://" + args.unixPath;
    std::printf("bxt_top — %s   uptime %.1f s   window %.2f s\n",
                target.c_str(), cur.uptimeUs / 1.0e6,
                dt_s > 0.0 ? dt_s : 0.0);
    std::printf(
        "req/s %8.1f   err/s %6.1f   conn/s %6.1f   busy/s %6.1f   "
        "queue %3.0f   shards %.0f\n",
        rateOf(cur, prev, "bxt.server.requests", dt_s),
        rateOf(cur, prev, "bxt.server.errors", dt_s),
        rateOf(cur, prev, "bxt.server.connections", dt_s),
        rateOf(cur, prev, "bxt.server.rejected_busy", dt_s),
        gaugeOf(cur, "bxt.server.queue_depth"),
        gaugeOf(cur, "bxt.server.shards") > 0.0
            ? gaugeOf(cur, "bxt.server.shards")
            : gaugeOf(cur, "bxt.server.threads"));

    double window_total = 0.0;
    const double p50 = windowedQuantile(cur, prev, "bxt.server.request_us",
                                        0.50, window_total);
    double ignored = 0.0;
    const double p95 = windowedQuantile(cur, prev, "bxt.server.request_us",
                                        0.95, ignored);
    const double p99 = windowedQuantile(cur, prev, "bxt.server.request_us",
                                        0.99, ignored);
    std::printf("request_us (window, %.0f samples): p50 %.1f   p95 %.1f   "
                "p99 %.1f\n",
                window_total, p50, p95, p99);
    std::printf("spans: recorded %.0f (+%.1f/s)   dropped %.0f "
                "(+%.1f/s)\n",
                counterOf(cur, "bxt.server.spans_recorded"),
                rateOf(cur, prev, "bxt.server.spans_recorded", dt_s),
                counterOf(cur, "bxt.server.spans_dropped"),
                rateOf(cur, prev, "bxt.server.spans_dropped", dt_s));

    // Per-shard table: the SO_REUSEPORT load balance made visible.
    if (!args.noShards) {
        std::set<long> shard_ids;
        for (const auto &[name, value] : cur.counters) {
            const long id = shardIdOf(name);
            if (id >= 0)
                shard_ids.insert(id);
        }
        for (const auto &[name, value] : cur.gauges) {
            const long id = shardIdOf(name);
            if (id >= 0)
                shard_ids.insert(id);
        }
        if (shard_ids.size() > 1) {
            std::printf("\n%-6s %6s %8s %8s %9s %6s %7s\n", "shard",
                        "conns", "conn/s", "req/s", "tx/s", "queue",
                        "busy/s");
            for (long id : shard_ids) {
                const std::string b =
                    "bxt.server.shard." + std::to_string(id);
                std::printf(
                    "%-6ld %6.0f %8.1f %8.1f %9.1f %6.0f %7.1f\n", id,
                    gaugeOf(cur, b + ".active_connections"),
                    rateOf(cur, prev, b + ".connections", dt_s),
                    rateOf(cur, prev, b + ".requests", dt_s),
                    rateOf(cur, prev, b + ".tx_encoded", dt_s),
                    gaugeOf(cur, b + ".queue_depth"),
                    rateOf(cur, prev, b + ".rejected_busy", dt_s));
            }
        }
    }

    // Per-stream (tenant) table, busiest first.
    std::set<long> stream_ids;
    std::string leaf;
    for (const auto &[name, value] : cur.counters) {
        const long id = streamIdOf(name, leaf);
        if (id > 0)
            stream_ids.insert(id);
    }
    if (!stream_ids.empty()) {
        const auto base = [](long id) {
            return "bxt.server.stream." + std::to_string(id);
        };
        std::vector<std::pair<double, long>> ranked;
        ranked.reserve(stream_ids.size());
        for (long id : stream_ids) {
            ranked.emplace_back(
                counterOf(cur, base(id) + ".requests"), id);
        }
        std::sort(ranked.begin(), ranked.end(), [](const auto &a,
                                                   const auto &b) {
            if (a.first != b.first)
                return a.first > b.first;
            return a.second < b.second;
        });
        std::printf("\n%-7s %8s %9s %11s %6s %10s %8s %-20s %4s\n",
                    "stream", "req/s", "tx/s", "ones_in/s", "rm%",
                    "zero_frac", "xor_w", "choice", "sw");
        const std::size_t shown =
            std::min<std::size_t>(ranked.size(), 10);
        for (std::size_t i = 0; i < shown; ++i) {
            const long id = ranked[i].second;
            const std::string b = base(id);
            const double in_rate = rateOf(cur, prev, b + ".ones_in",
                                          dt_s);
            const double out_rate = rateOf(cur, prev, b + ".ones_out",
                                           dt_s);
            std::printf("%-7ld %8.1f %9.1f %11.0f %6.2f %10.3f %8.3f "
                        "%-20s %4.0f\n",
                        id, rateOf(cur, prev, b + ".requests", dt_s),
                        rateOf(cur, prev, b + ".tx_encoded", dt_s),
                        in_rate, removedPct(in_rate, out_rate),
                        gaugeOf(cur, b + ".window_zero_frac"),
                        gaugeOf(cur, b + ".window_xor_weight"),
                        adaptiveChoiceOf(cur, b).c_str(),
                        counterOf(cur, b + ".adaptive.switches"));
        }
        if (shown < ranked.size())
            std::printf("(%zu of %zu streams shown)\n", shown,
                        ranked.size());
    }

    // Per-spec ones-on-bus table.
    std::vector<std::string> specs;
    for (const auto &[name, value] : cur.counters) {
        std::string spec;
        if (specOf(name, spec))
            specs.push_back(spec);
    }
    if (!specs.empty()) {
        std::printf("\n%-28s %12s %12s %6s\n", "spec", "ones_in/s",
                    "ones_out/s", "rm%");
        for (const std::string &spec : specs) {
            const std::string b = "bxt.server." + spec;
            const double in_rate =
                rateOf(cur, prev, b + ".ones_in", dt_s);
            const double out_rate =
                rateOf(cur, prev, b + ".ones_out", dt_s);
            std::printf("%-28s %12.0f %12.0f %6.2f\n", spec.c_str(),
                        in_rate, out_rate,
                        removedPct(in_rate, out_rate));
        }
    }
    std::fflush(stdout);
}

} // namespace

int
main(int argc, char **argv)
{
    Args args;
    bxt::Cli cli("bxt_top",
                 "live dashboard for a running bxtd (Snapshot opcode "
                 "poller)");
    cli.add("--tcp", "HOST:PORT", "connect over TCP",
            [&](const std::string &v) { args.tcp = v; });
    cli.add("--unix", "PATH", "connect over a Unix-domain socket",
            [&](const std::string &v) { args.unixPath = v; });
    cli.add("--interval-ms", "N", "poll interval (default 1000)",
            [&](const std::string &v) {
                args.intervalMs = std::strtol(v.c_str(), nullptr, 0);
            });
    cli.addFlag("--once",
                "print one snapshot (cumulative rates) and exit",
                [&] { args.once = true; });
    cli.add("--count", "N", "exit after N refreshes (default: run on)",
            [&](const std::string &v) {
                args.count = std::strtoul(v.c_str(), nullptr, 0);
            });
    cli.addFlag("--no-clear", "append refreshes instead of ANSI-clearing",
                [&] { args.noClear = true; });
    cli.addFlag("--no-shards",
                "collapse the per-shard table (aggregate view only)",
                [&] { args.noShards = true; });
    if (!cli.parse(argc, argv))
        return cli.exitCode();

    if (args.tcp.empty() && args.unixPath.empty()) {
        std::fprintf(stderr, "bxt_top: need --tcp or --unix\n");
        return 2;
    }
    if (args.intervalMs <= 0)
        args.intervalMs = 1000;

    std::string err;
    bxt::client::Client client;
    if (!args.unixPath.empty()) {
        client = bxt::client::Client::connectUnix(args.unixPath, err);
    } else {
        const std::size_t colon = args.tcp.rfind(':');
        if (colon == std::string::npos) {
            std::fprintf(stderr, "bxt_top: bad --tcp '%s'\n",
                         args.tcp.c_str());
            return 2;
        }
        client = bxt::client::Client::connectTcp(
            args.tcp.substr(0, colon),
            static_cast<int>(std::strtol(args.tcp.c_str() + colon + 1,
                                         nullptr, 10)),
            err);
    }
    if (!client.connected()) {
        std::fprintf(stderr, "bxt_top: %s\n", err.c_str());
        return 1;
    }

    Sample prev; // First refresh diffs against zero => cumulative view.
    const std::size_t refreshes = args.once ? 1 : args.count;
    for (std::size_t i = 0; refreshes == 0 || i < refreshes; ++i) {
        if (i > 0) {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(args.intervalMs));
        }
        std::string json;
        if (!client.snapshot(json, err)) {
            std::fprintf(stderr, "bxt_top: %s\n", err.c_str());
            return 1;
        }
        Sample cur;
        if (!parseSample(json, cur, err)) {
            std::fprintf(stderr, "bxt_top: %s\n", err.c_str());
            return 1;
        }
        render(args, cur, prev,
               !args.noClear && !args.once && refreshes != 1);
        prev = std::move(cur);
    }
    return 0;
}
