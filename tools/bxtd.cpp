/**
 * @file
 * bxtd: the batched encode/decode daemon. Serves the framed wire
 * protocol (server/wire.h) over TCP and/or a Unix-domain socket until
 * SIGTERM/SIGINT, then drains gracefully and exits 0.
 *
 * Usage:
 *   bxtd [--listen HOST:PORT] [--unix PATH] [--shards N] [--threads N]
 *        [--max-batch K] [--idle-timeout MS] [--max-pending N]
 *        [--trace-spans PATH]
 *
 * --trace-spans drains the per-worker span rings on shutdown and writes
 * the sampled request lifecycles as a Chrome trace-event JSON file
 * (load it in chrome://tracing or Perfetto).
 */

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/cli.h"
#include "server/server.h"
#include "telemetry/metrics.h"
#include "telemetry/spanring.h"

namespace {

bxt::server::Server *g_server = nullptr;

void
onSignal(int)
{
    // requestStop is async-signal-safe (atomic store + pipe write).
    if (g_server != nullptr)
        g_server->requestStop();
}

/** Split "HOST:PORT"; false on a missing/invalid port. */
bool
parseListen(const std::string &text, std::string &host, int &port)
{
    const std::size_t colon = text.rfind(':');
    if (colon == std::string::npos || colon + 1 >= text.size())
        return false;
    host = text.substr(0, colon);
    char *end = nullptr;
    const long value = std::strtol(text.c_str() + colon + 1, &end, 10);
    if (*end != '\0' || value < 0 || value > 65535)
        return false;
    port = static_cast<int>(value);
    return !host.empty();
}

} // namespace

int
main(int argc, char **argv)
{
    bxt::server::ServerOptions options;
    std::string listen_spec;
    std::string trace_spans_path;

    bxt::Cli cli("bxtd",
                 "batched encode/decode server for the bxt wire protocol");
    cli.add("--listen", "HOST:PORT",
            "TCP listen address (port 0 picks an ephemeral port)",
            [&](const std::string &v) { listen_spec = v; });
    cli.add("--unix", "PATH", "Unix-domain socket path",
            [&](const std::string &v) { options.unixPath = v; });
    cli.add("--shards", "N",
            "shared-nothing worker shards (default: hardware count)",
            [&](const std::string &v) {
                options.shards = static_cast<unsigned>(
                    std::strtoul(v.c_str(), nullptr, 0));
            });
    cli.add("--threads", "N",
            "alias for --shards, kept for older scripts",
            [&](const std::string &v) {
                options.threads = static_cast<unsigned>(
                    std::strtoul(v.c_str(), nullptr, 0));
            });
    cli.add("--max-batch", "K",
            "max frames coalesced per connection pass (default 64)",
            [&](const std::string &v) {
                options.maxBatch = std::strtoul(v.c_str(), nullptr, 0);
            });
    cli.add("--idle-timeout", "MS",
            "per-connection idle timeout, -1 = forever (default 30000)",
            [&](const std::string &v) {
                options.idleTimeoutMs =
                    static_cast<int>(std::strtol(v.c_str(), nullptr, 0));
            });
    cli.add("--max-pending", "N",
            "accepted-but-unserved connection bound (default 64)",
            [&](const std::string &v) {
                options.maxPending = std::strtoul(v.c_str(), nullptr, 0);
            });
    cli.add("--trace-spans", "PATH",
            "write sampled request spans as Chrome trace JSON on exit",
            [&](const std::string &v) { trace_spans_path = v; });
    if (!cli.parse(argc, argv))
        return cli.exitCode();

    if (!listen_spec.empty() &&
        !parseListen(listen_spec, options.tcpHost, options.tcpPort)) {
        std::fprintf(stderr, "bxtd: bad --listen '%s' (want HOST:PORT)\n",
                     listen_spec.c_str());
        return 2;
    }
    if (options.tcpPort < 0 && options.unixPath.empty()) {
        std::fprintf(stderr,
                     "bxtd: nothing to serve (need --listen or --unix)\n");
        return 2;
    }
    if (options.maxBatch == 0)
        options.maxBatch = 1;

    // A server without telemetry is blind: the Stats opcode and
    // bxt_report both read the live snapshot, so enable recording even
    // when BXT_METRICS is unset in the environment.
    bxt::telemetry::setMetricsEnabled(true);

    bxt::server::Server server(options);
    std::string err;
    if (!server.start(err)) {
        std::fprintf(stderr, "bxtd: %s\n", err.c_str());
        return 1;
    }

    g_server = &server;
    std::signal(SIGTERM, onSignal);
    std::signal(SIGINT, onSignal);
    std::signal(SIGPIPE, SIG_IGN);

    if (server.tcpPort() >= 0) {
        std::printf("bxtd: listening on tcp://%s:%d\n",
                    options.tcpHost.c_str(), server.tcpPort());
    }
    if (!options.unixPath.empty())
        std::printf("bxtd: listening on unix://%s\n",
                    options.unixPath.c_str());
    std::printf("bxtd: serving (%zu shards, max-batch %zu, "
                "max-pending %zu)\n",
                server.shardCount(), options.maxBatch,
                options.maxPending);
    std::fflush(stdout); // Scripts parse the resolved port from stdout.

    server.serve();

    g_server = nullptr;
    if (!trace_spans_path.empty()) {
        if (bxt::telemetry::writeServerSpanTrace(trace_spans_path)) {
            std::printf("bxtd: wrote request spans to %s "
                        "(%llu recorded, %llu dropped)\n",
                        trace_spans_path.c_str(),
                        static_cast<unsigned long long>(
                            bxt::telemetry::serverSpansRecorded()),
                        static_cast<unsigned long long>(
                            bxt::telemetry::serverSpansDropped()));
        } else {
            std::fprintf(stderr, "bxtd: failed to write spans to %s\n",
                         trace_spans_path.c_str());
        }
    }
    std::printf("bxtd: drained, exiting\n");
    return 0;
}
